"""The synchronous round-based network engine.

This module implements the system model of Section IV of the paper (the
*id-only model*):

* ``n`` nodes with unique, not necessarily consecutive identifiers;
* computation proceeds in lock-step rounds — messages sent in round ``r``
  are consumed in round ``r + 1`` (other delay models are available for the
  Section IX impossibility experiments);
* a node can broadcast to everyone or reply to a node it has heard from;
* sender identifiers on the wire are truthful (no spoofing on the direct
  channel), but Byzantine nodes may put arbitrary claims inside payloads;
* duplicate messages from the same node within a round are discarded.

The engine is intentionally single-threaded and deterministic: given the
same processes, adversary strategies, delay model and seed, a run produces
exactly the same trace.  Determinism is what lets the experiment harness
treat every (configuration, seed) pair as a reproducible data point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .delays import DelayModel, SynchronousDelay
from .errors import (
    DuplicateNodeError,
    HaltedProcessError,
    InvalidOutgoingError,
    MembershipError,
    RoundLimitExceeded,
)
from .events import EventKind, Trace, TraceEvent
from .messages import Broadcast, Envelope, Inbox, InboxBuilder, NodeId, Outgoing, Unicast
from .metrics import RunMetrics
from .node import Process, RoundView
from .rng import make_rng

__all__ = ["SystemView", "RunResult", "SynchronousNetwork", "all_correct_decided", "all_correct_halted"]


@dataclass(frozen=True)
class SystemView:
    """A global, omniscient snapshot offered to adversary strategies.

    Correct processes never see this — they only get a :class:`RoundView`.
    Byzantine strategies may use it to adapt (e.g. to target the node whose
    candidate set is smallest), modelling a worst-case adversary.
    """

    round_index: int
    active_ids: frozenset[NodeId]
    byzantine_ids: frozenset[NodeId]
    correct_processes: Mapping[NodeId, Process]
    rng: np.random.Generator

    @property
    def correct_ids(self) -> frozenset[NodeId]:
        return self.active_ids - self.byzantine_ids

    @property
    def n(self) -> int:
        return len(self.active_ids)

    @property
    def f(self) -> int:
        return len(self.byzantine_ids & self.active_ids)


@dataclass
class RunResult:
    """Everything a finished (or stopped) simulation exposes."""

    processes: dict[NodeId, Process]
    metrics: RunMetrics
    trace: Trace
    rounds_executed: int
    stop_reason: str

    # -- convenience accessors -------------------------------------------------

    def process(self, node_id: NodeId) -> Process:
        return self.processes[node_id]

    @property
    def correct_processes(self) -> dict[NodeId, Process]:
        return {i: p for i, p in self.processes.items() if not p.is_byzantine}

    @property
    def byzantine_processes(self) -> dict[NodeId, Process]:
        return {i: p for i, p in self.processes.items() if p.is_byzantine}

    def outputs(self, correct_only: bool = True) -> dict[NodeId, Any]:
        """Decision values per node (``None`` for undecided nodes)."""

        source = self.correct_processes if correct_only else self.processes
        return {i: p.output for i, p in source.items()}

    def decided_outputs(self) -> dict[NodeId, Any]:
        """Decision values of correct nodes that actually decided."""

        return {i: p.output for i, p in self.correct_processes.items() if p.decided}

    def agreement_reached(self) -> bool:
        """True when every correct node decided and on the same value."""

        outputs = [p.output for p in self.correct_processes.values()]
        if not outputs or any(p is None for p in outputs):
            return False
        first = outputs[0]
        return all(value == first for value in outputs)

    def distinct_decisions(self) -> set[Any]:
        return {p.output for p in self.correct_processes.values() if p.decided}


def all_correct_decided(network: "SynchronousNetwork") -> bool:
    """Stop condition: every correct process (halted or not) has decided."""

    procs = network.correct_processes()
    return bool(procs) and all(p.decided for p in procs)


def all_correct_halted(network: "SynchronousNetwork") -> bool:
    """Stop condition: every active correct process has halted."""

    procs = network.correct_processes()
    return bool(procs) and all(p.halted for p in procs)


class SynchronousNetwork:
    """Drives a set of processes round by round.

    Parameters
    ----------
    processes:
        The initial participants.  Byzantine participants are ordinary
        :class:`Process` objects whose ``is_byzantine`` is ``True`` (see
        :class:`repro.adversary.base.ByzantineProcess`).
    delay_model:
        Maps each message to its delivery round; defaults to the
        synchronous next-round model.
    seed:
        Seed for the network-level RNG (delays, adversary randomness).
    trace:
        When ``True`` a full :class:`~repro.sim.events.Trace` is recorded.
    joins:
        Optional mapping ``round -> iterable of processes`` activated at the
        *start* of that round (they may send from that round onwards).
    leaves:
        Optional mapping ``round -> iterable of node ids`` removed at the
        start of that round.  Used by churn schedules; protocol-level
        "absent" announcements are the protocol's own business.
    """

    def __init__(
        self,
        processes: Iterable[Process],
        *,
        delay_model: DelayModel | None = None,
        seed: int = 0,
        trace: bool = False,
        joins: Mapping[int, Iterable[Process]] | None = None,
        leaves: Mapping[int, Iterable[NodeId]] | None = None,
    ) -> None:
        self._processes: dict[NodeId, Process] = {}
        for process in processes:
            self._register(process)
        self._active: set[NodeId] = set(self._processes)
        self._delay_model = delay_model or SynchronousDelay()
        self._rng = make_rng(seed)
        self._trace = Trace(enabled=trace)
        self._metrics = RunMetrics()
        self._pending: list[Envelope] = []
        self._round = 0
        self._decided_seen: set[NodeId] = set()
        self._joins: dict[int, list[Process]] = {
            int(r): list(ps) for r, ps in (joins or {}).items()
        }
        self._leaves: dict[int, list[NodeId]] = {
            int(r): list(ids) for r, ids in (leaves or {}).items()
        }

    # -- registration / membership ----------------------------------------------

    def _register(self, process: Process) -> None:
        if process.node_id in self._processes:
            raise DuplicateNodeError(process.node_id)
        self._processes[process.node_id] = process

    def add_process(self, process: Process, *, at_round: int | None = None) -> None:
        """Add a participant, immediately or at the start of ``at_round``."""

        if at_round is None or at_round <= self._round:
            self._register(process)
            self._active.add(process.node_id)
        else:
            self._joins.setdefault(at_round, []).append(process)

    def remove_process(self, node_id: NodeId, *, at_round: int | None = None) -> None:
        """Remove a participant, immediately or at the start of ``at_round``."""

        if at_round is None or at_round <= self._round:
            if node_id not in self._processes:
                raise MembershipError(f"cannot remove unknown node {node_id}")
            self._active.discard(node_id)
        else:
            self._leaves.setdefault(at_round, []).append(node_id)

    def _apply_membership_changes(self, round_index: int) -> None:
        for process in self._joins.pop(round_index, []):
            if process.node_id in self._processes:
                raise MembershipError(
                    f"node {process.node_id} joined twice (round {round_index})"
                )
            self._register(process)
            self._active.add(process.node_id)
            self._trace.record(
                TraceEvent(EventKind.NODE_JOINED, round_index, node_id=process.node_id)
            )
        for node_id in self._leaves.pop(round_index, []):
            if node_id not in self._processes:
                raise MembershipError(
                    f"node {node_id} left without ever joining (round {round_index})"
                )
            self._active.discard(node_id)
            self._trace.record(
                TraceEvent(EventKind.NODE_LEFT, round_index, node_id=node_id)
            )

    # -- introspection -------------------------------------------------------------

    @property
    def current_round(self) -> int:
        return self._round

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @property
    def metrics(self) -> RunMetrics:
        return self._metrics

    @property
    def trace(self) -> Trace:
        return self._trace

    def processes(self) -> dict[NodeId, Process]:
        return dict(self._processes)

    def process(self, node_id: NodeId) -> Process:
        return self._processes[node_id]

    def active_ids(self) -> frozenset[NodeId]:
        return frozenset(self._active)

    def byzantine_ids(self) -> frozenset[NodeId]:
        return frozenset(
            i for i in self._active if self._processes[i].is_byzantine
        )

    def correct_processes(self) -> list[Process]:
        return [
            self._processes[i]
            for i in sorted(self._active)
            if not self._processes[i].is_byzantine
        ]

    def active_correct_processes(self) -> list[Process]:
        return [p for p in self.correct_processes() if not p.halted]

    # -- the round loop --------------------------------------------------------------

    def step_round(self) -> None:
        """Execute exactly one round."""

        self._round += 1
        round_index = self._round
        self._apply_membership_changes(round_index)
        round_metrics = self._metrics.start_round(round_index)
        self._trace.record(TraceEvent(EventKind.ROUND_START, round_index))

        # 1. Deliver messages scheduled for this round.
        builder = InboxBuilder()
        still_pending: list[Envelope] = []
        for envelope in self._pending:
            if envelope.deliver_round > round_index:
                still_pending.append(envelope)
                continue
            if envelope.dest not in self._active:
                continue  # the destination left before delivery
            builder.add(envelope.dest, envelope.sender, envelope.payload)
            self._trace.record(
                TraceEvent(
                    EventKind.MESSAGE_DELIVERED,
                    round_index,
                    node_id=envelope.dest,
                    peer_id=envelope.sender,
                    payload=envelope.payload,
                )
            )
        self._pending = still_pending

        # 2. Step every active process.
        active_ids = frozenset(self._active)
        byzantine_ids = self.byzantine_ids()
        round_metrics.active_nodes = len(active_ids)
        round_metrics.byzantine_nodes = len(byzantine_ids)
        system_view = SystemView(
            round_index=round_index,
            active_ids=active_ids,
            byzantine_ids=byzantine_ids,
            correct_processes={
                i: p for i, p in self._processes.items() if not p.is_byzantine
            },
            rng=self._rng,
        )

        outgoing_by_node: dict[NodeId, Sequence[Outgoing]] = {}
        for node_id in sorted(self._active):
            process = self._processes[node_id]
            if process.halted:
                round_metrics.halted_nodes += 1
                continue
            inbox = builder.build(node_id)
            self._metrics.record_delivery(node_id, len(inbox))
            if process.is_byzantine and hasattr(process, "observe_system"):
                process.observe_system(system_view)
            view = RoundView(round_index=round_index, inbox=inbox)
            outgoing = process.step(view)
            if outgoing:
                if process.halted and not process.is_byzantine:
                    # A correct process may decide and halt in the same
                    # round it sends its final messages; that is fine.  What
                    # is not fine is a process that was already halted
                    # before the round — those are filtered above — so any
                    # remaining messages are legitimate.
                    pass
                outgoing_by_node[node_id] = outgoing
            self._record_decision(process, round_index)
            if process.halted:
                self._trace.record(
                    TraceEvent(EventKind.NODE_HALTED, round_index, node_id=node_id)
                )

        # 3. Schedule the outgoing messages.
        for node_id, actions in outgoing_by_node.items():
            for action in actions:
                self._schedule(node_id, action, round_index)

    def _record_decision(self, process: Process, round_index: int) -> None:
        if process.is_byzantine or process.node_id in self._decided_seen:
            return
        if process.decided:
            self._decided_seen.add(process.node_id)
            self._metrics.record_decision(process.node_id, round_index, process.output)
            self._trace.record(
                TraceEvent(
                    EventKind.NODE_DECIDED,
                    round_index,
                    node_id=process.node_id,
                    detail=process.output,
                )
            )

    def _schedule(self, sender: NodeId, action: Outgoing, round_index: int) -> None:
        if isinstance(action, Broadcast):
            destinations = sorted(self._active)
            self._metrics.record_send(sender, len(destinations), broadcast=True)
            for dest in destinations:
                self._enqueue(sender, dest, action.payload, round_index)
        elif isinstance(action, Unicast):
            self._metrics.record_send(sender, 1, broadcast=False)
            self._enqueue(sender, action.dest, action.payload, round_index)
        else:
            raise InvalidOutgoingError(sender, action)

    def _enqueue(
        self, sender: NodeId, dest: NodeId, payload: Any, round_index: int
    ) -> None:
        deliver = self._delay_model.delivery_round(sender, dest, round_index, self._rng)
        self._pending.append(
            Envelope(
                sender=sender,
                dest=dest,
                payload=payload,
                sent_round=round_index,
                deliver_round=deliver,
            )
        )
        self._trace.record(
            TraceEvent(
                EventKind.MESSAGE_SENT,
                round_index,
                node_id=sender,
                peer_id=dest,
                payload=payload,
            )
        )

    # -- running to completion -------------------------------------------------------

    def run(
        self,
        *,
        max_rounds: int = 1000,
        stop_when: Callable[["SynchronousNetwork"], bool] | None = None,
        raise_on_limit: bool = False,
    ) -> RunResult:
        """Run until ``stop_when`` is satisfied or ``max_rounds`` elapse.

        The default stop condition is "every active correct process has
        decided", which is what the single-shot agreement experiments use.
        """

        condition = stop_when or all_correct_decided
        stop_reason = "round_limit"
        for _ in range(max_rounds):
            self.step_round()
            if condition(self):
                stop_reason = "stop_condition"
                break
        result = RunResult(
            processes=dict(self._processes),
            metrics=self._metrics,
            trace=self._trace,
            rounds_executed=self._round,
            stop_reason=stop_reason,
        )
        if stop_reason == "round_limit" and raise_on_limit:
            raise RoundLimitExceeded(max_rounds, result)
        return result
