"""Process abstractions for the synchronous round-based simulator.

A *process* is the unit of computation the network drives: once per round
it receives an :class:`~repro.sim.messages.Inbox` (the messages sent to it
in the previous round) and returns the messages it wants to send in this
round.  Protocol implementations in :mod:`repro.core` and the baselines in
:mod:`repro.baselines` subclass :class:`Process`; Byzantine nodes are
represented by :class:`repro.adversary.base.ByzantineProcess`, which
delegates to an adversary strategy.

Design notes
------------
* Processes are *pure state machines*: ``step`` receives an immutable
  :class:`RoundView` and returns a list of outgoing actions.  They never
  touch the network directly, which makes protocol composition (e.g. the
  rotor-coordinator embedded inside the consensus algorithm) and unit
  testing trivial — a test can drive a process with hand-crafted inboxes.
* Decision values are exposed through ``output``/``decided`` so the harness
  can collect results uniformly across protocols.
* ``halted`` processes stop being scheduled; the paper's reliable broadcast
  intentionally never halts on its own (it is a subroutine), so halting is
  always an explicit protocol decision.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Sequence

from .messages import Inbox, NodeId, Outgoing, intern_payload

__all__ = ["RoundView", "Process", "KnownSenders", "NullProcess"]


@dataclass(frozen=True)
class RoundView:
    """Everything a process is allowed to observe in one round.

    ``round_index`` is the 1-based global round number.  The id-only model
    gives nodes no other global information: no ``n``, no ``f``, no
    membership list — only their own identifier and whatever arrived in the
    inbox.
    """

    round_index: int
    inbox: Inbox


class Process(abc.ABC):
    """Base class for every (correct) protocol participant."""

    def __init__(self, node_id: NodeId) -> None:
        self._node_id = node_id
        self._halted = False

    # -- identity ---------------------------------------------------------

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def is_byzantine(self) -> bool:
        """Correct processes report ``False``; adversary wrappers override."""

        return False

    # -- lifecycle ---------------------------------------------------------

    @property
    def halted(self) -> bool:
        """True when the process asked to stop being scheduled."""

        return self._halted

    def halt(self) -> None:
        """Mark the process as finished; the network stops stepping it."""

        self._halted = True

    # -- results -----------------------------------------------------------

    @property
    def decided(self) -> bool:
        """True when the process has produced its (first) output."""

        return self.output is not None

    @property
    def output(self) -> Any:
        """The protocol output, or ``None`` when not yet decided."""

        return None

    # -- the actual state machine -------------------------------------------

    @abc.abstractmethod
    def step(self, view: RoundView) -> Sequence[Outgoing]:
        """Consume one round of messages, return the messages to send."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "halted" if self.halted else "running"
        return f"{type(self).__name__}(id={self.node_id}, {status})"


class NullProcess(Process):
    """A correct process that participates in no protocol.

    Useful as a placeholder in membership experiments and as the simplest
    possible :class:`Process` for simulator unit tests.
    """

    def step(self, view: RoundView) -> Sequence[Outgoing]:  # noqa: ARG002
        return ()


class KnownSenders:
    """Tracks ``nv`` — the nodes that have sent at least one message so far.

    Every algorithm in the paper replaces the unknown ``n`` with ``nv``, the
    number of *distinct* nodes from which the local node has received at
    least one message up to the current round (Algorithm 1, line 10;
    Algorithm 2, line 7).  This helper centralises that bookkeeping so the
    protocol code reads like the pseudocode.
    """

    __slots__ = ("_view", "_frozen")

    def __init__(self) -> None:
        self._frozen = False
        self._view: frozenset[NodeId] = frozenset()

    def observe(self, inbox: Inbox) -> None:
        """Record every sender in ``inbox``.

        After :meth:`freeze` the membership no longer grows; Algorithms 3
        and 5 freeze ``nv`` after their two initialization rounds and
        discard messages from unknown senders afterwards.

        The union is memoized on the inbox, keyed by the membership going
        in: on the shared-inbox engines every node with the same prior
        view (all of them, in the common lock-step case) reuses one union
        computed once per round instead of paying an O(n) set update each.
        The result is interned, so in the steady state — no new senders —
        the memo hands back the *same* frozenset object and this is a
        dict lookup plus an identity-equal assignment.
        """

        if self._frozen:
            return
        view = self._view
        self._view = inbox.memo(
            ("known-senders", view),
            lambda ib: intern_payload(view | ib.senders),
        )

    def freeze(self) -> None:
        """Stop growing the set (used after the init rounds of Alg. 3/5).

        The frozen view is interned: correct nodes overwhelmingly freeze
        identical memberships, and sharing one canonical frozenset makes
        the memo-key comparisons of :meth:`~repro.sim.messages.Inbox.memo`
        (restricted views are keyed by the allowed set) an identity check
        instead of an element-wise hash-and-compare.
        """

        self._frozen = True
        self._view = intern_payload(self._view)

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def count(self) -> int:
        """The value ``nv`` used in the relative quorum thresholds."""

        return len(self._view)

    @property
    def ids(self) -> frozenset[NodeId]:
        """The membership as a frozenset — the storage itself.

        Quorum counting queries this every support count, and the wire
        layer uses it as the memo key of the shared
        :meth:`~repro.sim.messages.Inbox.restricted` filter — returning the
        same object (with frozenset's internally cached hash) keeps those
        lookups cheap at scale.
        """

        return self._view

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._view

    def __len__(self) -> int:
        return len(self._view)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "frozen" if self._frozen else "open"
        return f"KnownSenders(n={len(self._view)}, {state})"
