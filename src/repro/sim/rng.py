"""Deterministic random-number utilities.

Every stochastic choice in the simulator (adversary behaviour, message
delays, workload generation) is derived from a single integer seed so that
every experiment in :mod:`repro.harness` is exactly reproducible.  We use
``numpy.random.Generator`` (PCG64) rather than the global ``random`` module
because independent, splittable streams make it easy to give each node,
adversary and delay model its own generator without correlation.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["make_rng", "spawn", "derive", "shuffled", "sample_without_replacement"]


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` from an integer seed.

    ``None`` produces an OS-seeded generator; experiments should always pass
    an explicit integer to stay reproducible.
    """

    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent children."""

    if count < 0:
        raise ValueError("count must be non-negative")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]


def derive(seed: int, *components: int | str) -> int:
    """Derive a new 63-bit seed from a base seed and a tuple of labels.

    This is used to give every (experiment, configuration, repetition)
    triple its own seed without having to thread generator objects through
    the whole harness.  The derivation is a stable hash, independent of
    ``PYTHONHASHSEED``.
    """

    acc = np.uint64(seed & 0x7FFFFFFFFFFFFFFF)
    # A small Fowler–Noll–Vo style mix keeps the derivation stable across
    # processes and Python versions (the built-in ``hash`` is salted).
    prime = np.uint64(1099511628211)
    with np.errstate(over="ignore"):
        for component in components:
            data = str(component).encode("utf-8")
            for byte in data:
                acc = np.uint64(acc ^ np.uint64(byte)) * prime
    return int(acc & np.uint64(0x7FFFFFFFFFFFFFFF))


def shuffled(rng: np.random.Generator, items: list) -> list:
    """Return a new list with the items of ``items`` in random order."""

    order = rng.permutation(len(items))
    return [items[i] for i in order]


def sample_without_replacement(
    rng: np.random.Generator, items: list, count: int
) -> list:
    """Sample ``count`` distinct items from ``items``."""

    if count > len(items):
        raise ValueError(
            f"cannot sample {count} items from a population of {len(items)}"
        )
    idx = rng.choice(len(items), size=count, replace=False)
    return [items[i] for i in idx]


def integer_stream(rng: np.random.Generator, low: int, high: int) -> Iterator[int]:
    """Yield an endless stream of integers uniform on ``[low, high)``."""

    while True:
        yield int(rng.integers(low, high))
