"""Message model for the synchronous round-based system.

The paper's model (Section IV, the *id-only model*) has these properties,
all of which are encoded here or in :mod:`repro.sim.network`:

* Computation proceeds in rounds; a message sent in round ``r`` is consumed
  in round ``r + 1`` (later for the semi-synchronous / asynchronous delay
  models used by the Section IX experiments).
* The identifier of the sender is attached to every message and cannot be
  forged on the direct channel — a Byzantine node can *claim* things about
  other nodes inside the payload, but the envelope's ``sender`` field is
  always truthful.
* Duplicate messages from the same node within one round are discarded;
  this is enforced by :class:`Inbox`, which stores at most one copy of each
  distinct payload per sender per round.

Payloads are ordinary hashable Python values.  Protocol implementations in
:mod:`repro.core` use small frozen dataclasses (e.g. ``Echo``, ``Prefer``)
so that payload equality is structural and hashable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping

NodeId = int
Payload = Hashable

__all__ = [
    "NodeId",
    "Payload",
    "Broadcast",
    "Unicast",
    "Outgoing",
    "Envelope",
    "Inbox",
    "InboxBuilder",
]


@dataclass(frozen=True)
class Broadcast:
    """Send ``payload`` to every node currently in the system (incl. self).

    This mirrors the paper's "broadcast" primitive: a correct node does not
    need to know who the recipients are; the network fans the message out to
    whoever is present in the delivery round.
    """

    payload: Payload


@dataclass(frozen=True)
class Unicast:
    """Send ``payload`` to a single, explicitly named destination.

    The paper allows a node to "send a message to a specific node that sent
    a message to the node before"; protocols only use this for targeted
    replies (e.g. the ``ack`` replies of Algorithm 6).  Byzantine adversary
    strategies use it freely to equivocate.
    """

    dest: NodeId
    payload: Payload


Outgoing = Broadcast | Unicast


@dataclass(frozen=True)
class Envelope:
    """A payload in flight, stamped with its true sender and timing."""

    sender: NodeId
    dest: NodeId
    payload: Payload
    sent_round: int
    deliver_round: int

    def __post_init__(self) -> None:
        if self.deliver_round <= self.sent_round:
            raise ValueError(
                "a message cannot be delivered in the round it was sent "
                f"(sent {self.sent_round}, deliver {self.deliver_round})"
            )


class Inbox:
    """The set of messages a node receives at the start of one round.

    Messages are grouped by (truthful) sender identifier.  Duplicate
    payloads from the same sender in the same round are collapsed, matching
    the model's "duplicate messages from the same node in a round are simply
    discarded".
    """

    __slots__ = ("_by_sender", "_size", "_senders", "_memo")

    def __init__(self, by_sender: Mapping[NodeId, Iterable[Payload]] | None = None):
        collapsed: dict[NodeId, tuple[Payload, ...]] = {}
        if by_sender:
            for sender, payloads in by_sender.items():
                if not isinstance(payloads, (list, tuple)):
                    # the fallback below re-iterates, so a one-shot iterator
                    # must be materialised before the first attempt
                    payloads = list(payloads)
                if len(payloads) == 1:
                    # A single payload cannot be a duplicate — skip the
                    # dedup build (and its hashing) entirely.  With the
                    # batched total-order wrapper most senders deliver one
                    # large payload per round, so this is the common case.
                    collapsed[sender] = tuple(payloads)
                    continue
                try:
                    # Payloads are hashable by contract, so first-occurrence
                    # deduplication is a dict build rather than a quadratic
                    # membership scan over the per-sender list.
                    seen = tuple(dict.fromkeys(payloads))
                except TypeError:
                    unique: list[Payload] = []
                    for payload in payloads:
                        if payload not in unique:
                            unique.append(payload)
                    seen = tuple(unique)
                if seen:
                    collapsed[sender] = seen
        self._by_sender = collapsed
        self._size = -1
        self._senders: frozenset[NodeId] | None = None
        self._memo: dict | None = None

    # -- basic accessors -------------------------------------------------

    @property
    def senders(self) -> frozenset[NodeId]:
        """Identifiers of every node that delivered at least one message."""

        cached = self._senders
        if cached is None:
            cached = frozenset(self._by_sender)
            self._senders = cached
        return cached

    def payloads_from(self, sender: NodeId) -> tuple[Payload, ...]:
        """All distinct payloads delivered by ``sender`` this round."""

        return self._by_sender.get(sender, ())

    def items(self) -> Iterator[tuple[NodeId, Payload]]:
        """Iterate over ``(sender, payload)`` pairs."""

        for sender, payloads in self._by_sender.items():
            for payload in payloads:
                yield sender, payload

    def __len__(self) -> int:
        size = self._size
        if size < 0:
            size = sum(len(p) for p in self._by_sender.values())
            self._size = size
        return size

    def __bool__(self) -> bool:
        return bool(self._by_sender)

    def __contains__(self, sender: NodeId) -> bool:
        return sender in self._by_sender

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Inbox({dict(self._by_sender)!r})"

    def memo(self, key: Hashable, factory: "Callable[[Inbox], Any]") -> Any:
        """Cache ``factory(self)`` on this inbox under ``key``.

        An inbox is immutable, so any pure derivation of its contents (a
        payload index, a per-instance routing table) can be computed once
        and shared by every consumer — crucially including *different
        receivers* on the synchronous fast path, where a broadcast-only
        round hands the same ``Inbox`` object to every node.  The cache
        dies with the inbox; factories must not mutate the result.
        """

        cache = self._memo
        if cache is None:
            self._memo = cache = {}
        try:
            return cache[key]
        except KeyError:
            value = factory(self)
            cache[key] = value
            return value

    # -- protocol-oriented queries ----------------------------------------

    def senders_of(self, payload: Payload) -> frozenset[NodeId]:
        """The distinct senders that delivered exactly ``payload``."""

        return frozenset(
            sender
            for sender, payloads in self._by_sender.items()
            if payload in payloads
        )

    def count(self, payload: Payload) -> int:
        """Number of distinct senders that delivered exactly ``payload``."""

        return len(self.senders_of(payload))

    def senders_matching(
        self, predicate: Callable[[Payload], bool]
    ) -> frozenset[NodeId]:
        """Senders that delivered at least one payload satisfying ``predicate``."""

        return frozenset(
            sender
            for sender, payloads in self._by_sender.items()
            if any(predicate(p) for p in payloads)
        )

    def payloads_matching(
        self, predicate: Callable[[Payload], bool]
    ) -> list[tuple[NodeId, Payload]]:
        """``(sender, payload)`` pairs whose payload satisfies ``predicate``."""

        return [(s, p) for s, p in self.items() if predicate(p)]

    def received_from(self, sender: NodeId, payload: Payload) -> bool:
        """True when ``sender`` delivered exactly ``payload`` this round."""

        return payload in self._by_sender.get(sender, ())

    def group_by_type(self) -> dict[type, list[tuple[NodeId, Payload]]]:
        """Group ``(sender, payload)`` pairs by the payload's Python type."""

        grouped: dict[type, list[tuple[NodeId, Payload]]] = {}
        for sender, payload in self.items():
            grouped.setdefault(type(payload), []).append((sender, payload))
        return grouped

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "Inbox":
        return _EMPTY_INBOX

    @staticmethod
    def from_pairs(pairs: Iterable[tuple[NodeId, Payload]]) -> "Inbox":
        by_sender: dict[NodeId, list[Payload]] = {}
        for sender, payload in pairs:
            by_sender.setdefault(sender, []).append(payload)
        return Inbox(by_sender)


_EMPTY_INBOX = Inbox()


@dataclass
class InboxBuilder:
    """Mutable accumulator used by the network while routing envelopes."""

    _pairs: dict[NodeId, list[tuple[NodeId, Payload]]] = field(default_factory=dict)

    def add(self, dest: NodeId, sender: NodeId, payload: Payload) -> None:
        self._pairs.setdefault(dest, []).append((sender, payload))

    def build(self, dest: NodeId) -> Inbox:
        pairs = self._pairs.get(dest)
        if not pairs:
            return Inbox.empty()
        return Inbox.from_pairs(pairs)

    def destinations(self) -> frozenset[NodeId]:
        return frozenset(self._pairs)
