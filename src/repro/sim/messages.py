"""Message model and wire format for the synchronous round-based system.

The paper's model (Section IV, the *id-only model*) has these properties,
all of which are encoded here or in :mod:`repro.sim.network`:

* Computation proceeds in rounds; a message sent in round ``r`` is consumed
  in round ``r + 1`` (later for the semi-synchronous / asynchronous delay
  models used by the Section IX experiments).
* The identifier of the sender is attached to every message and cannot be
  forged on the direct channel — a Byzantine node can *claim* things about
  other nodes inside the payload, but the envelope's ``sender`` field is
  always truthful.
* Duplicate messages from the same node within one round are discarded;
  this is enforced by :class:`Inbox`, which stores at most one copy of each
  distinct payload per sender per round.

The wire-format contract
------------------------
Payloads are ordinary hashable Python values; protocol implementations in
:mod:`repro.core` use small frozen dataclasses (e.g. ``Echo``, ``Prefer``)
so that payload equality is structural and hashable.  Payloads whose size
grows with ``n`` must additionally follow the compact wire format this
module provides the building blocks for:

* **Cached digests** — an O(n)-sized payload is hashed many times on its
  way through the system (inbox deduplication per receiver, memoized index
  builds, intern lookups).  Decorating the frozen dataclass with
  :func:`cached_payload_hash` computes the structural hash once per
  instance and caches it on the object; the cache is stripped on pickling
  because Python string hashing is salted per process.
* **Interning** — identical payloads are routinely produced by *every*
  node in a round (candidate gossip during initialization, batched
  consensus traffic over a common event set).  :func:`intern_payload`
  collapses them onto one canonical instance in a process-wide table, so
  the digest is computed once system-wide and duplicate copies share
  memory.  Interning is semantics-free: equality and hashing behave
  exactly as without it.
* **Delta coding** — a payload that re-states an ever-growing set every
  round is wrong at the wire level; senders must announce *changes* plus
  a periodic full-set anchor instead.  The pattern has two concrete
  instances.  Candidate gossip
  (:class:`repro.core.rotor_coordinator.CandidateGossip` with its
  ``GossipEncoder``/``GossipDecoder``): candidate-set *adds* per round,
  a full sorted anchor with a cached digest every few emissions, and a
  deterministic receiver-side reconstruction.  And the total-order
  membership plane (:class:`repro.core.total_order.DeltaFrame`): instead
  of every member unicasting a dedicated ack to every joiner — message
  count proportional to joiners × members — the acks ride the batch
  broadcast a member was sending anyway as a *welcomes* delta, with the
  full sorted membership anchored every fourth welcome-bearing frame.
  Chains are identical either way (``membership_wire`` selects the
  format); only the traffic differs, which is exactly what the search's
  ``message_volume`` objective measures.
* **Byte accounting** — :func:`payload_nbytes` reports (and caches) the
  serialised size of a payload, which the network uses for the opt-in
  message-volume metrics tracked by ``benchmarks/bench_scaling.py``.

Derived views of a round's traffic (support indexes, routing tables, the
``allowed``-sender restriction of :meth:`Inbox.restricted`) are memoized
*on the inbox* via :meth:`Inbox.memo`: on the synchronous fast path every
receiver of a broadcast-only round shares one :class:`Inbox` object, so a
pure derivation is computed once per round instead of once per node.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping

NodeId = int
Payload = Hashable

__all__ = [
    "NodeId",
    "Payload",
    "Broadcast",
    "Unicast",
    "Outgoing",
    "Envelope",
    "Inbox",
    "ColumnarInbox",
    "InboxBuilder",
    "cached_payload_hash",
    "intern_payload",
    "intern_table_size",
    "clear_intern_table",
    "payload_nbytes",
]

# ---------------------------------------------------------------------------
# Wire-format helpers: cached digests, interning, byte accounting
# ---------------------------------------------------------------------------

#: Prefix shared by every per-instance wire cache attribute.  Anything
#: starting with it is stripped on pickling — caches must never travel to
#: another process (string hashes are salted per process) and must not
#: inflate the serialised size :func:`payload_nbytes` reports.
_WIRE_CACHE_PREFIX = "_wire"

#: Instance attribute holding a payload's cached structural hash.
_HASH_ATTR = "_wire_hash"

#: Instance attribute holding a payload's cached serialised size.
_NBYTES_ATTR = "_wire_nbytes"


def cached_payload_hash(cls: type) -> type:
    """Class decorator caching the structural hash of a frozen dataclass.

    Apply *above* ``@dataclass(frozen=True)`` so the generated structural
    ``__hash__`` is wrapped.  The hash is computed on first use and stored
    on the instance; every ``_wire``-prefixed cache attribute (this hash,
    the :func:`payload_nbytes` size, any payload-specific digest cache) is
    stripped on pickling because hashes of strings are salted per process
    and serialised sizes are cheaper to recompute than to trust across
    processes.
    """

    structural_hash = cls.__hash__

    def __hash__(self) -> int:
        cached = self.__dict__.get(_HASH_ATTR)
        if cached is None:
            cached = structural_hash(self)
            object.__setattr__(self, _HASH_ATTR, cached)
        return cached

    def __getstate__(self):
        return {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith(_WIRE_CACHE_PREFIX)
        }

    cls.__hash__ = __hash__
    cls.__getstate__ = __getstate__
    return cls


#: Soft cap on the intern table; reaching it clears the table, which is
#: always safe because interning never affects equality or hashing.
_INTERN_LIMIT = 1 << 16

_INTERN_TABLE: dict[Payload, Payload] = {}


def intern_payload(payload: Payload) -> Payload:
    """Return the canonical instance of ``payload`` from the intern table.

    The first caller's instance becomes canonical; later structurally-equal
    payloads (typically the same announcement produced by every node in a
    round) are dropped in favour of it, so any cached digest is computed
    once process-wide.  Unhashable values are returned unchanged.
    """

    table = _INTERN_TABLE
    try:
        canonical = table.get(payload)
    except TypeError:
        return payload
    if canonical is None:
        if len(table) >= _INTERN_LIMIT:
            table.clear()
        table[payload] = canonical = payload
    return canonical


def intern_table_size() -> int:
    """Number of canonical payloads currently interned."""

    return len(_INTERN_TABLE)


def clear_intern_table() -> None:
    """Drop every canonical payload (safe at any time; see the module docs)."""

    _INTERN_TABLE.clear()


def payload_nbytes(payload: Payload) -> int:
    """The serialised size of ``payload`` in bytes (cached when possible).

    Sizes are measured with :mod:`pickle` (highest protocol) and exclude
    envelope overhead, so they track the *payload* cost a real transport
    would pay per copy.  The measurement is cached on instances that allow
    attribute assignment (the frozen payload dataclasses do).
    """

    instance_dict = getattr(payload, "__dict__", None)
    if instance_dict is not None:
        cached = instance_dict.get(_NBYTES_ATTR)
        if cached is not None:
            return cached
    nbytes = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    if instance_dict is not None:
        try:
            object.__setattr__(payload, _NBYTES_ATTR, nbytes)
        except (AttributeError, TypeError):
            pass
    return nbytes


@dataclass(frozen=True)
class Broadcast:
    """Send ``payload`` to every node currently in the system (incl. self).

    This mirrors the paper's "broadcast" primitive: a correct node does not
    need to know who the recipients are; the network fans the message out to
    whoever is present in the delivery round.
    """

    payload: Payload


@dataclass(frozen=True)
class Unicast:
    """Send ``payload`` to a single, explicitly named destination.

    The paper allows a node to "send a message to a specific node that sent
    a message to the node before"; protocols only use this for targeted
    replies (e.g. the ``ack`` replies of Algorithm 6).  Byzantine adversary
    strategies use it freely to equivocate.
    """

    dest: NodeId
    payload: Payload


Outgoing = Broadcast | Unicast


@dataclass(frozen=True)
class Envelope:
    """A payload in flight, stamped with its true sender and timing."""

    sender: NodeId
    dest: NodeId
    payload: Payload
    sent_round: int
    deliver_round: int

    def __post_init__(self) -> None:
        if self.deliver_round <= self.sent_round:
            raise ValueError(
                "a message cannot be delivered in the round it was sent "
                f"(sent {self.sent_round}, deliver {self.deliver_round})"
            )


class Inbox:
    """The set of messages a node receives at the start of one round.

    Messages are grouped by (truthful) sender identifier.  Duplicate
    payloads from the same sender in the same round are collapsed, matching
    the model's "duplicate messages from the same node in a round are simply
    discarded".
    """

    __slots__ = ("_by_sender", "_size", "_senders", "_memo")

    def __init__(self, by_sender: Mapping[NodeId, Iterable[Payload]] | None = None):
        collapsed: dict[NodeId, tuple[Payload, ...]] = {}
        if by_sender:
            for sender, payloads in by_sender.items():
                if not isinstance(payloads, (list, tuple)):
                    # the fallback below re-iterates, so a one-shot iterator
                    # must be materialised before the first attempt
                    payloads = list(payloads)
                if len(payloads) == 1:
                    # A single payload cannot be a duplicate — skip the
                    # dedup build (and its hashing) entirely.  With the
                    # batched total-order wrapper most senders deliver one
                    # large payload per round, so this is the common case.
                    collapsed[sender] = tuple(payloads)
                    continue
                try:
                    # Payloads are hashable by contract, so first-occurrence
                    # deduplication is a dict build rather than a quadratic
                    # membership scan over the per-sender list.
                    seen = tuple(dict.fromkeys(payloads))
                except TypeError:
                    unique: list[Payload] = []
                    for payload in payloads:
                        if payload not in unique:
                            unique.append(payload)
                    seen = tuple(unique)
                if seen:
                    collapsed[sender] = seen
        self._by_sender = collapsed
        self._size = -1
        self._senders: frozenset[NodeId] | None = None
        self._memo: dict | None = None

    # -- basic accessors -------------------------------------------------

    @property
    def senders(self) -> frozenset[NodeId]:
        """Identifiers of every node that delivered at least one message."""

        cached = self._senders
        if cached is None:
            cached = frozenset(self._by_sender)
            self._senders = cached
        return cached

    def payloads_from(self, sender: NodeId) -> tuple[Payload, ...]:
        """All distinct payloads delivered by ``sender`` this round."""

        return self._by_sender.get(sender, ())

    def items(self) -> Iterator[tuple[NodeId, Payload]]:
        """Iterate over ``(sender, payload)`` pairs."""

        for sender, payloads in self._by_sender.items():
            for payload in payloads:
                yield sender, payload

    def __len__(self) -> int:
        size = self._size
        if size < 0:
            size = sum(len(p) for p in self._by_sender.values())
            self._size = size
        return size

    def __bool__(self) -> bool:
        return bool(self._by_sender)

    def __contains__(self, sender: NodeId) -> bool:
        return sender in self._by_sender

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Inbox({dict(self._by_sender)!r})"

    def memo(self, key: Hashable, factory: "Callable[[Inbox], Any]") -> Any:
        """Cache ``factory(self)`` on this inbox under ``key``.

        An inbox is immutable, so any pure derivation of its contents (a
        payload index, a per-instance routing table) can be computed once
        and shared by every consumer — crucially including *different
        receivers* on the synchronous fast path, where a broadcast-only
        round hands the same ``Inbox`` object to every node.  The cache
        dies with the inbox; factories must not mutate the result.
        """

        cache = self._memo
        if cache is None:
            self._memo = cache = {}
        try:
            return cache[key]
        except KeyError:
            value = factory(self)
            cache[key] = value
            return value

    def restricted(self, allowed: frozenset[NodeId]) -> "Inbox":
        """This inbox with only the messages from ``allowed`` senders.

        Returns ``self`` when nothing needs stripping (the common case —
        protocols restrict to their known-sender sets, which usually cover
        everyone who spoke).  Otherwise the restriction is built once and
        memoized on this inbox keyed by ``allowed``, so on the synchronous
        fast path every node applying the same filter to the shared inbox
        reuses one restricted view — including its own memo cache, which is
        what lets downstream index builds stay once-per-round even in runs
        where Byzantine senders must be stripped.
        """

        def build(inbox: "Inbox") -> "Inbox":
            if inbox.senders <= allowed:
                return inbox
            kept = {
                sender: payloads
                for sender, payloads in inbox._by_sender.items()
                if sender in allowed
            }
            return Inbox._from_collapsed(kept)

        # The subset test is O(senders); memoizing even the "nothing to
        # strip" case makes the per-node cost of the common path a single
        # dict probe (frozensets cache their hash, and the interned
        # known-sender views make the key comparison an identity check).
        return self.memo(("wire-restricted", allowed), build)

    # -- protocol-oriented queries ----------------------------------------

    def senders_of(self, payload: Payload) -> frozenset[NodeId]:
        """The distinct senders that delivered exactly ``payload``."""

        return frozenset(
            sender
            for sender, payloads in self._by_sender.items()
            if payload in payloads
        )

    def count(self, payload: Payload) -> int:
        """Number of distinct senders that delivered exactly ``payload``."""

        return len(self.senders_of(payload))

    def senders_matching(
        self, predicate: Callable[[Payload], bool]
    ) -> frozenset[NodeId]:
        """Senders that delivered at least one payload satisfying ``predicate``."""

        return frozenset(
            sender
            for sender, payloads in self._by_sender.items()
            if any(predicate(p) for p in payloads)
        )

    def payloads_matching(
        self, predicate: Callable[[Payload], bool]
    ) -> list[tuple[NodeId, Payload]]:
        """``(sender, payload)`` pairs whose payload satisfies ``predicate``."""

        return [(s, p) for s, p in self.items() if predicate(p)]

    def received_from(self, sender: NodeId, payload: Payload) -> bool:
        """True when ``sender`` delivered exactly ``payload`` this round."""

        return payload in self._by_sender.get(sender, ())

    def group_by_type(self) -> dict[type, list[tuple[NodeId, Payload]]]:
        """Group ``(sender, payload)`` pairs by the payload's Python type."""

        grouped: dict[type, list[tuple[NodeId, Payload]]] = {}
        for sender, payload in self.items():
            grouped.setdefault(type(payload), []).append((sender, payload))
        return grouped

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "Inbox":
        return _EMPTY_INBOX

    @staticmethod
    def from_pairs(pairs: Iterable[tuple[NodeId, Payload]]) -> "Inbox":
        by_sender: dict[NodeId, list[Payload]] = {}
        for sender, payload in pairs:
            by_sender.setdefault(sender, []).append(payload)
        return Inbox(by_sender)

    @classmethod
    def _from_collapsed(cls, by_sender: dict[NodeId, tuple[Payload, ...]]) -> "Inbox":
        """Wrap already-deduplicated per-sender tuples without re-hashing."""

        inbox = cls.__new__(cls)
        inbox._by_sender = by_sender
        inbox._size = -1
        inbox._senders = None
        inbox._memo = None
        return inbox


_EMPTY_INBOX = Inbox()


class ColumnarInbox(Inbox):
    """A shared broadcast-round inbox backed by parallel columns.

    Instead of the per-sender payload-tuple dict a plain :class:`Inbox`
    eagerly builds, this representation keeps the round's traffic as three
    parallel structures: a table of *distinct* payloads, a column of sender
    ids and a column of payload-table indexes — one row per retained
    ``(sender, payload)`` pair, in exactly the order :meth:`Inbox.items`
    would yield them.  Payload identity is therefore an integer compare,
    which is what lets :mod:`repro.core.tally` compute quorum counts and
    support tallies as ``np.bincount``/``np.unique`` batch operations over
    the columns.

    The object-based API is preserved bit-for-bit: ``_by_sender`` is
    materialised lazily on first use (``payloads_from``, ``restricted``,
    adversary strategies…), grouped identically to the dict the fast
    kernel would have built, so every consumer observes the same contents
    in the same order.
    """

    __slots__ = ("_payload_table", "_sender_rows", "_payload_rows",
                 "_sender_order", "_collapsed")

    @classmethod
    def from_staged(cls, staged: Iterable[tuple[NodeId, Payload, Any]]) -> "Inbox":
        """Build the shared inbox straight from staged send-batches.

        ``staged`` holds ``(sender, payload, dests)`` triples grouped by
        sender (one contiguous run per sender — the fast kernel stages one
        node's actions consecutively).  Duplicate payloads from the same
        sender are collapsed first-occurrence, matching ``Inbox(by_sender)``.
        Falls back to a plain :class:`Inbox` when a payload is unhashable
        or the batches are not sender-contiguous.
        """

        table: dict[Payload, int] = {}
        payload_table: list[Payload] = []
        sender_rows: list[NodeId] = []
        payload_rows: list[int] = []
        sender_order: list[NodeId] = []
        grouped = set()
        current: Any = _UNGROUPED
        seen: set[int] = set()
        try:
            for sender, payload, _dests in staged:
                if sender != current:
                    if sender in grouped:
                        raise _NotContiguous
                    grouped.add(sender)
                    current = sender
                    sender_order.append(sender)
                    seen = set()
                index = table.get(payload)
                if index is None:
                    table[payload] = index = len(payload_table)
                    payload_table.append(payload)
                elif index in seen:
                    continue
                seen.add(index)
                sender_rows.append(sender)
                payload_rows.append(index)
        except (TypeError, _NotContiguous):
            by_sender: dict[NodeId, list[Payload]] = {}
            for sender, payload, _dests in staged:
                by_sender.setdefault(sender, []).append(payload)
            return Inbox(by_sender)
        inbox = cls.__new__(cls)
        inbox._payload_table = payload_table
        inbox._sender_rows = sender_rows
        inbox._payload_rows = payload_rows
        inbox._sender_order = sender_order
        inbox._collapsed = None
        inbox._size = len(sender_rows)
        inbox._senders = None
        inbox._memo = None
        return inbox

    # The base class stores the per-sender dict in a slot; shadowing it
    # with a property keeps every inherited method working against the
    # lazily materialised grouping.
    @property
    def _by_sender(self) -> dict[NodeId, tuple[Payload, ...]]:
        collapsed = self._collapsed
        if collapsed is None:
            payloads = self._payload_table
            grouped: dict[NodeId, list[Payload]] = {
                sender: [] for sender in self._sender_order
            }
            for sender, index in zip(self._sender_rows, self._payload_rows):
                grouped[sender].append(payloads[index])
            collapsed = {
                sender: tuple(items) for sender, items in grouped.items()
            }
            self._collapsed = collapsed
        return collapsed

    def columns(self) -> tuple[list[NodeId], list[int], list[Payload]]:
        """``(sender_rows, payload_rows, payload_table)`` — parallel columns.

        Row ``i`` states that ``sender_rows[i]`` delivered
        ``payload_table[payload_rows[i]]``; rows appear in
        :meth:`Inbox.items` order.  Consumers must not mutate the lists.
        """

        return self._sender_rows, self._payload_rows, self._payload_table

    @property
    def senders(self) -> frozenset[NodeId]:
        cached = self._senders
        if cached is None:
            cached = frozenset(self._sender_order)
            self._senders = cached
        return cached

    def items(self) -> Iterator[tuple[NodeId, Payload]]:
        payloads = self._payload_table
        for sender, index in zip(self._sender_rows, self._payload_rows):
            yield sender, payloads[index]

    def __bool__(self) -> bool:
        return bool(self._sender_rows)

    def __contains__(self, sender: NodeId) -> bool:
        return sender in self.senders

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarInbox(rows={len(self._sender_rows)}, "
            f"payloads={len(self._payload_table)})"
        )


class _NotContiguous(Exception):
    """Internal: staged batches were not grouped by sender."""


_UNGROUPED = object()


@dataclass
class InboxBuilder:
    """Mutable accumulator used by the network while routing envelopes."""

    _pairs: dict[NodeId, list[tuple[NodeId, Payload]]] = field(default_factory=dict)

    def add(self, dest: NodeId, sender: NodeId, payload: Payload) -> None:
        self._pairs.setdefault(dest, []).append((sender, payload))

    def build(self, dest: NodeId) -> Inbox:
        pairs = self._pairs.get(dest)
        if not pairs:
            return Inbox.empty()
        return Inbox.from_pairs(pairs)

    def destinations(self) -> frozenset[NodeId]:
        return frozenset(self._pairs)
