"""Exception hierarchy for the synchronous-round simulator.

Keeping a dedicated hierarchy lets callers distinguish configuration
mistakes (e.g. duplicate node identifiers) from runtime protocol errors
(e.g. a process emitting a message after it halted) and from violations of
simulator invariants that indicate a bug in the simulator itself.
"""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for every error raised by :mod:`repro.sim`."""


class ConfigurationError(SimulationError):
    """The simulation was constructed with inconsistent parameters."""


class UnknownEngineError(ConfigurationError, ValueError):
    """An engine name outside :data:`repro.sim.network.ENGINE_CHOICES`.

    Raised *eagerly* — at network construction for ``REPRO_ENGINE`` and at
    :meth:`~repro.sim.network.SynchronousNetwork.set_engine` for explicit
    arguments — never at mid-run resolution.  Doubles as a ``ValueError``
    so argument-validation callers can catch it idiomatically.
    """

    def __init__(self, engine: object, choices: tuple, *, source: str | None = None) -> None:
        origin = f" (from {source})" if source else ""
        super().__init__(
            f"unknown engine {engine!r}{origin}; choose from {', '.join(choices)}"
        )
        self.engine = engine
        self.choices = choices


class DuplicateNodeError(ConfigurationError):
    """Two processes were registered with the same node identifier."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"duplicate node identifier: {node_id}")
        self.node_id = node_id


class UnknownNodeError(ConfigurationError):
    """A message was addressed to a node identifier that never existed."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"unknown node identifier: {node_id}")
        self.node_id = node_id


class HaltedProcessError(SimulationError):
    """A halted process attempted to emit messages."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"process {node_id} emitted messages after halting")
        self.node_id = node_id


class InvalidOutgoingError(SimulationError):
    """A process returned something that is not a valid outgoing action."""

    def __init__(self, node_id: int, item: object) -> None:
        super().__init__(
            f"process {node_id} returned an invalid outgoing action: {item!r}"
        )
        self.node_id = node_id
        self.item = item


class RoundLimitExceeded(SimulationError):
    """The simulation reached ``max_rounds`` without satisfying its stop
    condition.

    The run result is attached so callers can still inspect partial
    progress (useful when probing executions that are *expected* not to
    terminate, e.g. the impossibility constructions of Section IX).
    """

    def __init__(self, max_rounds: int, result: object = None) -> None:
        super().__init__(f"simulation did not stop within {max_rounds} rounds")
        self.max_rounds = max_rounds
        self.result = result


class MembershipError(SimulationError):
    """A churn schedule referenced a node inconsistently (e.g. a join for a
    node that is already active, or a leave for a node that never joined)."""
