"""Message-delay models.

The paper's algorithms assume a *synchronous* system: a message sent in
round ``r`` is delivered in round ``r + 1``.  Section IX proves that this
assumption is necessary — with unknown ``n`` and ``f``, consensus is
impossible in asynchronous systems (Lemma 14) and in semi-synchronous
systems where the delay bound Δ exists but is unknown (Lemma 15).

To reproduce those constructions the simulator supports pluggable delay
models.  A delay model maps each sent message to its delivery round; the
synchronous model is the default and is what every experiment other than
E6 uses.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from .messages import NodeId

__all__ = [
    "DelayModel",
    "SynchronousDelay",
    "UniformRandomDelay",
    "BoundedUnknownDelay",
    "PartitionDelay",
    "FixedScheduleDelay",
]


def _index_groups(
    groups: tuple[frozenset[NodeId], ...],
) -> dict[NodeId, int]:
    """``node -> group index`` lookup; delivery is per-message, so the
    group membership scan must not be linear in the number of groups."""

    return {node: index for index, group in enumerate(groups) for node in group}


class DelayModel(abc.ABC):
    """Assigns a delivery round to every message."""

    @abc.abstractmethod
    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        """Return the round in which the message is delivered (> sent_round)."""

    @property
    def synchronous(self) -> bool:
        """True when every message is delivered exactly one round later."""

        return False


class SynchronousDelay(DelayModel):
    """The paper's default model: delivery in the next round."""

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        return sent_round + 1

    @property
    def synchronous(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return "SynchronousDelay()"


@dataclass
class UniformRandomDelay(DelayModel):
    """Each message takes between 1 and ``max_delay`` rounds, uniformly.

    This models an *asynchronous-looking* network whose delays are finite
    but unpredictable.  Protocols that implicitly rely on the synchronous
    round structure (all of the paper's algorithms) can violate safety under
    this model; experiment E6 quantifies how often.
    """

    max_delay: int = 3

    def __post_init__(self) -> None:
        if self.max_delay < 1:
            raise ValueError("max_delay must be at least 1")

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        return sent_round + int(rng.integers(1, self.max_delay + 1))


@dataclass
class BoundedUnknownDelay(DelayModel):
    """Semi-synchronous model of Lemma 15: a fixed bound Δ exists but the
    nodes do not know it.

    Messages between nodes in the same group are delivered in the next
    round; messages that cross groups take exactly ``delta`` rounds.  With
    ``delta`` larger than the time either group needs to decide, this
    realises the execution ``E_s`` constructed in the proof of Lemma 15.
    """

    groups: tuple[frozenset[NodeId], ...]
    delta: int = 50

    def __post_init__(self) -> None:
        if self.delta < 1:
            raise ValueError("delta must be at least 1")
        self.groups = tuple(frozenset(g) for g in self.groups)
        self._group_index = _index_groups(self.groups)

    def _group_of(self, node: NodeId) -> int:
        return self._group_index.get(node, -1)

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        if self._group_of(sender) == self._group_of(dest):
            return sent_round + 1
        return sent_round + self.delta


@dataclass
class PartitionDelay(DelayModel):
    """Asynchronous model of Lemma 14: cross-partition messages are delayed
    arbitrarily (here: until ``heal_round``, possibly never).

    Within a partition the system behaves synchronously, so each side of
    the partition is indistinguishable — to its members — from a system in
    which the other side does not exist.  That is exactly the
    indistinguishability argument of Lemma 14.
    """

    groups: tuple[frozenset[NodeId], ...]
    heal_round: int | None = None

    def __post_init__(self) -> None:
        self.groups = tuple(frozenset(g) for g in self.groups)
        self._group_index = _index_groups(self.groups)

    def _group_of(self, node: NodeId) -> int:
        return self._group_index.get(node, -1)

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        if self._group_of(sender) == self._group_of(dest):
            return sent_round + 1
        if self.heal_round is None:
            # "never": schedule far enough in the future that no bounded
            # experiment observes the delivery.
            return sent_round + 1_000_000
        return max(sent_round + 1, self.heal_round)


@dataclass
class FixedScheduleDelay(DelayModel):
    """Delays looked up from an explicit ``(sender, dest) -> delay`` table.

    Pairs absent from the table fall back to ``default`` rounds of delay.
    Useful for hand-constructed executions in tests.
    """

    table: Mapping[tuple[NodeId, NodeId], int] = field(default_factory=dict)
    default: int = 1

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        delay = self.table.get((sender, dest), self.default)
        if delay < 1:
            raise ValueError("delays must be at least one round")
        return sent_round + delay


def split_into_groups(ids: Iterable[NodeId], sizes: Iterable[int]) -> tuple[frozenset[NodeId], ...]:
    """Partition ``ids`` (in sorted order) into consecutive groups of ``sizes``.

    Convenience used by the impossibility experiments to build the ``A``/``B``
    partitions of Lemmas 14 and 15.
    """

    ordered = sorted(ids)
    groups: list[frozenset[NodeId]] = []
    start = 0
    for size in sizes:
        groups.append(frozenset(ordered[start : start + size]))
        start += size
    if start != len(ordered):
        groups.append(frozenset(ordered[start:]))
    return tuple(groups)
