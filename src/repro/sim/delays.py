"""Message-delay models.

The paper's algorithms assume a *synchronous* system: a message sent in
round ``r`` is delivered in round ``r + 1``.  Section IX proves that this
assumption is necessary — with unknown ``n`` and ``f``, consensus is
impossible in asynchronous systems (Lemma 14) and in semi-synchronous
systems where the delay bound Δ exists but is unknown (Lemma 15).

To reproduce those constructions the simulator supports pluggable delay
models.  A delay model maps each sent message to its delivery round; the
synchronous model is the default and is what every experiment other than
E6 uses.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from .messages import NodeId

__all__ = [
    "DelayModel",
    "SynchronousDelay",
    "UniformRandomDelay",
    "HeavyTailDelay",
    "JitteredSynchronousDelay",
    "BoundedUnknownDelay",
    "PartitionDelay",
    "FixedScheduleDelay",
    "UNGROUPED_POLICIES",
]

#: How the group-based models treat nodes absent from ``groups``.
#:
#: ``"isolated"``
#:     An ungrouped node shares a group with nobody but itself: every
#:     message between an ungrouped node and any *other* node is treated
#:     as cross-group.  This is the default, and the safe semantics for
#:     churn — a joiner whose id was minted after the partition was
#:     constructed stays on its own side of the partition instead of
#:     tunnelling through it.
#: ``"default_group"``
#:     All ungrouped nodes share one implicit extra group (index
#:     ``len(groups)``).  This is the historical behaviour — every node
#:     absent from ``groups`` used to map to the sentinel ``-1`` and
#:     therefore compare equal to every other absent node, which let
#:     churn joiners bypass the Lemma 14/15 constructions entirely.  It
#:     is kept as an explicit opt-in so executions that relied on it can
#:     still be expressed (and searched over), but it is never implied.
UNGROUPED_POLICIES = ("isolated", "default_group")


def _index_groups(
    groups: tuple[frozenset[NodeId], ...],
) -> dict[NodeId, int]:
    """``node -> group index`` lookup; delivery is per-message, so the
    group membership scan must not be linear in the number of groups."""

    return {node: index for index, group in enumerate(groups) for node in group}


class DelayModel(abc.ABC):
    """Assigns a delivery round to every message."""

    @abc.abstractmethod
    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        """Return the round in which the message is delivered (> sent_round)."""

    @property
    def synchronous(self) -> bool:
        """True when every message is delivered exactly one round later."""

        return False


class SynchronousDelay(DelayModel):
    """The paper's default model: delivery in the next round."""

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        return sent_round + 1

    @property
    def synchronous(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover
        return "SynchronousDelay()"


@dataclass
class UniformRandomDelay(DelayModel):
    """Each message takes between 1 and ``max_delay`` rounds, uniformly.

    This models an *asynchronous-looking* network whose delays are finite
    but unpredictable.  Protocols that implicitly rely on the synchronous
    round structure (all of the paper's algorithms) can violate safety under
    this model; experiment E6 quantifies how often.
    """

    max_delay: int = 3

    def __post_init__(self) -> None:
        if self.max_delay < 1:
            raise ValueError("max_delay must be at least 1")

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        return sent_round + int(rng.integers(1, self.max_delay + 1))


@dataclass
class HeavyTailDelay(DelayModel):
    """Heavy-tailed (discretised Pareto) per-message delays.

    Most messages arrive in the next round, but the tail is long: the
    extra delay beyond one round is drawn from a Pareto distribution with
    shape ``alpha`` (smaller ``alpha`` → heavier tail) and scale
    ``scale``, truncated at ``max_delay`` total rounds so bounded
    experiments always observe every delivery eventually.  This models
    the bursty, congested networks real deployments see — occasional
    stragglers arriving many rounds late — which is exactly the regime
    where protocols that implicitly lean on the synchronous round
    structure start to misbehave.
    """

    alpha: float = 1.5
    scale: float = 0.5
    max_delay: int = 20

    def __post_init__(self) -> None:
        if not (math.isfinite(self.alpha) and self.alpha > 0):
            raise ValueError("alpha must be positive and finite")
        if not (math.isfinite(self.scale) and self.scale > 0):
            raise ValueError("scale must be positive and finite")
        if self.max_delay < 1:
            raise ValueError("max_delay must be at least 1")

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        # Truncate while still a float: a deep-tail draw (tiny alpha, or a
        # large scale) can exceed float precision — even overflow to inf —
        # and int() would raise long before the min() could cap it.  For
        # in-range draws int(min(x, m)) == min(int(x), m), so the clamp
        # order does not change any previously valid delivery.
        extra = min(self.scale * rng.pareto(self.alpha), float(self.max_delay - 1))
        return sent_round + 1 + int(extra)


@dataclass
class JitteredSynchronousDelay(DelayModel):
    """Mostly synchronous delivery with occasional jitter.

    Each message independently arrives in the next round with probability
    ``1 - jitter_probability``; with probability ``jitter_probability`` it
    slips by a uniform 1..``max_extra`` additional rounds.  A small
    ``jitter_probability`` is the gentlest perturbation of the paper's
    model — a search harness can anneal it upward to find the point where
    a protocol's synchrony assumption actually starts to matter.
    """

    jitter_probability: float = 0.1
    max_extra: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.jitter_probability <= 1.0:
            raise ValueError("jitter_probability must be within [0, 1]")
        if self.max_extra < 1:
            raise ValueError("max_extra must be at least 1")

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        # One uniform draw per message keeps the RNG consumption pattern
        # identical across engines regardless of which branch is taken.
        roll = float(rng.random())
        if roll < self.jitter_probability:
            return sent_round + 1 + int(rng.integers(1, self.max_extra + 1))
        return sent_round + 1


class _GroupedDelay(DelayModel):
    """Shared group bookkeeping for the partition-style models.

    Subclasses call :meth:`_same_group`; nodes absent from ``groups`` are
    resolved according to the ``ungrouped`` policy (see
    :data:`UNGROUPED_POLICIES`).  The historical behaviour — every
    ungrouped node silently mapping to one shared ``-1`` sentinel, so two
    churn joiners always looked synchronous to each other — is only
    available as the explicit ``"default_group"`` opt-in.
    """

    groups: tuple[frozenset[NodeId], ...]
    ungrouped: str

    def _init_groups(self) -> None:
        if self.ungrouped not in UNGROUPED_POLICIES:
            raise ValueError(
                f"unknown ungrouped policy {self.ungrouped!r}; "
                f"choose from {', '.join(UNGROUPED_POLICIES)}"
            )
        self.groups = tuple(frozenset(g) for g in self.groups)
        self._group_index = _index_groups(self.groups)

    def _same_group(self, sender: NodeId, dest: NodeId) -> bool:
        index = self._group_index
        sender_group = index.get(sender)
        dest_group = index.get(dest)
        if sender_group is None or dest_group is None:
            if self.ungrouped == "default_group":
                shared = len(self.groups)
                sender_group = shared if sender_group is None else sender_group
                dest_group = shared if dest_group is None else dest_group
                return sender_group == dest_group
            # "isolated": an ungrouped node is its own singleton group.
            return sender == dest
        return sender_group == dest_group


@dataclass
class BoundedUnknownDelay(_GroupedDelay):
    """Semi-synchronous model of Lemma 15: a fixed bound Δ exists but the
    nodes do not know it.

    Messages between nodes in the same group are delivered in the next
    round; messages that cross groups take exactly ``delta`` rounds.  With
    ``delta`` larger than the time either group needs to decide, this
    realises the execution ``E_s`` constructed in the proof of Lemma 15.
    """

    groups: tuple[frozenset[NodeId], ...]
    delta: int = 50
    ungrouped: str = "isolated"

    def __post_init__(self) -> None:
        if self.delta < 1:
            raise ValueError("delta must be at least 1")
        self._init_groups()

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        if self._same_group(sender, dest):
            return sent_round + 1
        return sent_round + self.delta


@dataclass
class PartitionDelay(_GroupedDelay):
    """Asynchronous model of Lemma 14: cross-partition messages are delayed
    arbitrarily (here: until ``heal_round``, possibly never).

    Within a partition the system behaves synchronously, so each side of
    the partition is indistinguishable — to its members — from a system in
    which the other side does not exist.  That is exactly the
    indistinguishability argument of Lemma 14.
    """

    groups: tuple[frozenset[NodeId], ...]
    heal_round: int | None = None
    ungrouped: str = "isolated"

    def __post_init__(self) -> None:
        self._init_groups()

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        if self._same_group(sender, dest):
            return sent_round + 1
        if self.heal_round is None:
            # "never": schedule far enough in the future that no bounded
            # experiment observes the delivery.
            return sent_round + 1_000_000
        # A heal_round at or before the send still respects causality:
        # delivery can never precede the round after the send.
        return max(sent_round + 1, self.heal_round)


@dataclass
class FixedScheduleDelay(DelayModel):
    """Delays looked up from an explicit ``(sender, dest) -> delay`` table.

    Pairs absent from the table fall back to ``default`` rounds of delay.
    Useful for hand-constructed executions in tests.
    """

    table: Mapping[tuple[NodeId, NodeId], int] = field(default_factory=dict)
    default: int = 1

    def delivery_round(
        self,
        sender: NodeId,
        dest: NodeId,
        sent_round: int,
        rng: np.random.Generator,
    ) -> int:
        delay = self.table.get((sender, dest), self.default)
        if delay < 1:
            raise ValueError("delays must be at least one round")
        return sent_round + delay


def split_into_groups(ids: Iterable[NodeId], sizes: Iterable[int]) -> tuple[frozenset[NodeId], ...]:
    """Partition ``ids`` (in sorted order) into consecutive groups of ``sizes``.

    Convenience used by the impossibility experiments to build the ``A``/``B``
    partitions of Lemmas 14 and 15.  ``sizes`` must be positive and sum to
    at most ``len(ids)``; anything else would silently produce empty or
    truncated trailing groups, which defeats the constructions the groups
    exist for, so it raises :class:`ValueError` instead.  Ids left over
    after the last size form one trailing remainder group — that is how
    membership-changing runs keep churn joiners covered by the partition.
    """

    ordered = sorted(ids)
    sizes = [int(size) for size in sizes]
    if any(size < 1 for size in sizes):
        raise ValueError(f"group sizes must be positive, got {sizes}")
    if sum(sizes) > len(ordered):
        raise ValueError(
            f"group sizes {sizes} sum to {sum(sizes)} but only "
            f"{len(ordered)} ids were provided"
        )
    groups: list[frozenset[NodeId]] = []
    start = 0
    for size in sizes:
        groups.append(frozenset(ordered[start : start + size]))
        start += size
    if start != len(ordered):
        groups.append(frozenset(ordered[start:]))
    return tuple(groups)
