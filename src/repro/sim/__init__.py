"""Synchronous round-based message-passing simulator (the paper's substrate).

The simulator realises the id-only model of Section IV exactly: lock-step
rounds, truthful sender identifiers, broadcast/unicast primitives, and no
global knowledge of ``n`` or ``f`` at the processes.  Delay models other
than the synchronous one exist solely to reproduce the Section IX
impossibility constructions.
"""

from .delays import (
    BoundedUnknownDelay,
    DelayModel,
    FixedScheduleDelay,
    HeavyTailDelay,
    JitteredSynchronousDelay,
    PartitionDelay,
    SynchronousDelay,
    UniformRandomDelay,
    split_into_groups,
)
from .errors import (
    ConfigurationError,
    DuplicateNodeError,
    HaltedProcessError,
    InvalidOutgoingError,
    MembershipError,
    RoundLimitExceeded,
    SimulationError,
    UnknownNodeError,
)
from .events import EventKind, Trace, TraceEvent
from .messages import Broadcast, Envelope, Inbox, NodeId, Outgoing, Payload, Unicast
from .metrics import DecisionRecord, RoundMetrics, RunMetrics
from .network import (
    RunResult,
    SynchronousNetwork,
    SystemView,
    all_correct_decided,
    all_correct_halted,
)
from .node import KnownSenders, NullProcess, Process, RoundView
from .rng import derive, make_rng, spawn

__all__ = [
    "Broadcast",
    "BoundedUnknownDelay",
    "ConfigurationError",
    "DecisionRecord",
    "DelayModel",
    "DuplicateNodeError",
    "Envelope",
    "EventKind",
    "FixedScheduleDelay",
    "HaltedProcessError",
    "HeavyTailDelay",
    "Inbox",
    "InvalidOutgoingError",
    "JitteredSynchronousDelay",
    "KnownSenders",
    "MembershipError",
    "NodeId",
    "NullProcess",
    "Outgoing",
    "PartitionDelay",
    "Payload",
    "Process",
    "RoundLimitExceeded",
    "RoundMetrics",
    "RoundView",
    "RunMetrics",
    "RunResult",
    "SimulationError",
    "SynchronousDelay",
    "SynchronousNetwork",
    "SystemView",
    "Trace",
    "TraceEvent",
    "Unicast",
    "UniformRandomDelay",
    "UnknownNodeError",
    "all_correct_decided",
    "all_correct_halted",
    "derive",
    "make_rng",
    "spawn",
    "split_into_groups",
]
