"""Run-time metrics collected by the simulator.

The harness uses these counters to report the quantities the paper's
discussion section talks about (message complexity, round complexity) and
to compare the id-only algorithms against the known-(n, f) baselines in
experiment E9.

Like the trace backend (:mod:`repro.sim.events`), per-round counters live
in parallel ``array('q')`` columns rather than one dataclass per round:
:class:`RoundMetrics` is a mutable *view* onto one row of the columnar
store, materialised lazily by :attr:`RunMetrics.rounds` and handed out by
:meth:`RunMetrics.start_round` as the engines' per-round write cursor.
Reads and writes through a view hit the columns directly, so
``metrics.rounds[-1].messages_delivered`` keeps working unchanged while
summaries (:attr:`RunMetrics.total_messages`, …) become single column
sums.
"""

from __future__ import annotations

from array import array
from collections import Counter
from dataclasses import dataclass
from typing import Any, Iterable

from .messages import NodeId

__all__ = ["RoundMetrics", "RunMetrics", "DecisionRecord"]


#: Column order of the per-round counter store; also the (keyword)
#: argument order of the :class:`RoundMetrics` compatibility constructor.
_ROUND_FIELDS = (
    "round_index",
    "messages_sent",
    "broadcasts",
    "unicasts",
    "messages_delivered",
    "active_nodes",
    "byzantine_nodes",
    "halted_nodes",
    "payload_bytes",
)


class _RoundStore:
    """Parallel per-round counter columns (one ``array('q')`` per field)."""

    __slots__ = _ROUND_FIELDS

    def __init__(self) -> None:
        for name in _ROUND_FIELDS:
            setattr(self, name, array("q"))

    def append_round(self, round_index: int) -> None:
        self.round_index.append(round_index)
        for name in _ROUND_FIELDS[1:]:
            getattr(self, name).append(0)

    def __len__(self) -> int:
        return len(self.round_index)


class RoundMetrics:
    """Counters for a single simulated round (a view into the columns).

    Constructing one directly creates a standalone single-row store, so the
    pre-columnar ``RoundMetrics(round_index=..., messages_sent=...)`` shape
    keeps working for tests and external callers; the views handed out by
    :class:`RunMetrics` all share the run's store.
    """

    __slots__ = ("_store", "_index")

    def __init__(
        self,
        round_index: int = 0,
        messages_sent: int = 0,
        broadcasts: int = 0,
        unicasts: int = 0,
        messages_delivered: int = 0,
        active_nodes: int = 0,
        byzantine_nodes: int = 0,
        halted_nodes: int = 0,
        payload_bytes: int = 0,
    ) -> None:
        store = _RoundStore()
        store.append_round(round_index)
        self._store = store
        self._index = 0
        self.messages_sent = messages_sent
        self.broadcasts = broadcasts
        self.unicasts = unicasts
        self.messages_delivered = messages_delivered
        self.active_nodes = active_nodes
        self.byzantine_nodes = byzantine_nodes
        self.halted_nodes = halted_nodes
        self.payload_bytes = payload_bytes

    @classmethod
    def _attached(cls, store: _RoundStore, index: int) -> "RoundMetrics":
        view = cls.__new__(cls)
        view._store = store
        view._index = index
        return view

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{name}={getattr(self, name)}" for name in _ROUND_FIELDS)
        return f"RoundMetrics({fields})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RoundMetrics):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name) for name in _ROUND_FIELDS
        )

    def as_dict(self) -> dict[str, int]:
        return {
            "round": self.round_index,
            "messages_sent": self.messages_sent,
            "broadcasts": self.broadcasts,
            "unicasts": self.unicasts,
            "messages_delivered": self.messages_delivered,
            "active_nodes": self.active_nodes,
            "byzantine_nodes": self.byzantine_nodes,
            "halted_nodes": self.halted_nodes,
            "payload_bytes": self.payload_bytes,
        }


def _column_property(name: str) -> property:
    def getter(self: RoundMetrics) -> int:
        return getattr(self._store, name)[self._index]

    def setter(self: RoundMetrics, value: int) -> None:
        getattr(self._store, name)[self._index] = value

    return property(getter, setter)


for _name in _ROUND_FIELDS:
    setattr(RoundMetrics, _name, _column_property(_name))
del _name


@dataclass(frozen=True)
class DecisionRecord:
    """When and what a node decided."""

    node_id: NodeId
    round_index: int
    value: Any


class RunMetrics:
    """Aggregated counters for a whole simulation run."""

    __slots__ = (
        "_round_store",
        "per_node_sent",
        "per_node_delivered",
        "decisions",
        "peak_payload_bytes",
    )

    def __init__(self) -> None:
        self._round_store = _RoundStore()
        self.per_node_sent: Counter = Counter()
        self.per_node_delivered: Counter = Counter()
        self.decisions: list[DecisionRecord] = []
        #: Largest single payload seen (serialised bytes); 0 unless payload
        #: accounting is enabled on the network.
        self.peak_payload_bytes = 0

    @property
    def rounds(self) -> list[RoundMetrics]:
        """Per-round counter views, materialised lazily from the columns."""

        store = self._round_store
        return [RoundMetrics._attached(store, i) for i in range(len(store))]

    # -- recording -----------------------------------------------------------

    def start_round(self, round_index: int) -> RoundMetrics:
        store = self._round_store
        store.append_round(round_index)
        return RoundMetrics._attached(store, len(store) - 1)

    def record_send(self, node_id: NodeId, fanout: int, broadcast: bool) -> None:
        store = self._round_store
        if not len(store):
            return
        store.messages_sent[-1] += fanout
        if broadcast:
            store.broadcasts[-1] += 1
        else:
            store.unicasts[-1] += 1
        self.per_node_sent[node_id] += fanout

    def record_delivery(self, node_id: NodeId, count: int) -> None:
        store = self._round_store
        if not len(store):
            return
        store.messages_delivered[-1] += count
        self.per_node_delivered[node_id] += count

    def record_deliveries(self, counts: Iterable[tuple[NodeId, int]]) -> None:
        """Commit one round of delivery counters in bulk.

        Equivalent to calling :meth:`record_delivery` once per ``(node,
        count)`` pair, in order — including registering nodes whose count is
        zero — but with a single round-counter update.  The fast and queue
        engines use this once per round instead of once per process.
        """

        store = self._round_store
        if not len(store):
            return
        per_node = self.per_node_delivered
        total = 0
        for node_id, count in counts:
            total += count
            per_node[node_id] += count
        store.messages_delivered[-1] += total

    def record_payload(self, nbytes: int, copies: int) -> None:
        """Account one send action's payload: ``nbytes`` × ``copies`` wire bytes.

        Called by every engine kernel next to :meth:`record_send` when the
        network's payload accounting is enabled, so byte totals are
        engine-independent just like message counts.
        """

        store = self._round_store
        if not len(store):
            return
        store.payload_bytes[-1] += nbytes * copies
        if nbytes > self.peak_payload_bytes:
            self.peak_payload_bytes = nbytes

    def record_decision(self, node_id: NodeId, round_index: int, value: Any) -> None:
        self.decisions.append(DecisionRecord(node_id, round_index, value))

    # -- persistence hooks -----------------------------------------------------

    def export_columns(self) -> dict[str, bytes]:
        """Dump the per-round counter columns as raw ``array('q')`` bytes.

        One blob per :data:`_ROUND_FIELDS` entry, in native byte order —
        the run store records the writing machine's byte order and
        refuses to open a store written with the other one, so the blobs
        round-trip exactly through :meth:`from_columns`.
        """

        store = self._round_store
        return {name: getattr(store, name).tobytes() for name in _ROUND_FIELDS}

    @classmethod
    def from_columns(
        cls,
        columns: dict[str, bytes],
        *,
        per_node_sent: dict | None = None,
        per_node_delivered: dict | None = None,
        decisions: Iterable[tuple] = (),
        peak_payload_bytes: int = 0,
    ) -> "RunMetrics":
        """Rebuild a :class:`RunMetrics` from :meth:`export_columns` blobs.

        ``decisions`` takes ``(node_id, round_index, value)`` triples;
        the per-node mappings restore the cross-round counters.  The
        result compares equal to the original instance.
        """

        metrics = cls()
        store = metrics._round_store
        for name in _ROUND_FIELDS:
            getattr(store, name).frombytes(columns.get(name, b""))
        metrics.per_node_sent = Counter(per_node_sent or {})
        metrics.per_node_delivered = Counter(per_node_delivered or {})
        metrics.decisions = [DecisionRecord(*triple) for triple in decisions]
        metrics.peak_payload_bytes = peak_payload_bytes
        return metrics

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunMetrics):
            return NotImplemented
        ours, theirs = self._round_store, other._round_store
        return (
            all(
                getattr(ours, name) == getattr(theirs, name)
                for name in _ROUND_FIELDS
            )
            and self.per_node_sent == other.per_node_sent
            and self.per_node_delivered == other.per_node_delivered
            and self.decisions == other.decisions
            and self.peak_payload_bytes == other.peak_payload_bytes
        )

    # -- summaries -------------------------------------------------------------

    @property
    def total_rounds(self) -> int:
        return len(self._round_store)

    @property
    def total_messages(self) -> int:
        return sum(self._round_store.messages_sent)

    @property
    def total_broadcasts(self) -> int:
        return sum(self._round_store.broadcasts)

    @property
    def total_payload_bytes(self) -> int:
        return sum(self._round_store.payload_bytes)

    def messages_per_round(self) -> list[int]:
        return list(self._round_store.messages_sent)

    def decision_round(self, node_id: NodeId) -> int | None:
        """The round in which ``node_id`` first decided, or ``None``."""

        for record in self.decisions:
            if record.node_id == node_id:
                return record.round_index
        return None

    def decision_rounds(self) -> dict[NodeId, int]:
        """First decision round per node."""

        result: dict[NodeId, int] = {}
        for record in self.decisions:
            result.setdefault(record.node_id, record.round_index)
        return result

    def latest_decision_round(self) -> int | None:
        rounds = self.decision_rounds()
        return max(rounds.values()) if rounds else None

    def summary(self) -> dict[str, Any]:
        return {
            "rounds": self.total_rounds,
            "messages": self.total_messages,
            "broadcasts": self.total_broadcasts,
            "payload_bytes": self.total_payload_bytes,
            "peak_payload_bytes": self.peak_payload_bytes,
            "decisions": len(self.decision_rounds()),
            "last_decision_round": self.latest_decision_round(),
        }

    def as_dict(self) -> dict[str, Any]:
        """A JSON-serialisable dump (summary plus per-round counters).

        Used by the machine-readable result paths of the harness so run
        metrics can be archived and diffed alongside aggregated rows.
        """

        return {
            "summary": self.summary(),
            "per_round": [r.as_dict() for r in self.rounds],
            "per_node_sent": {str(k): int(v) for k, v in sorted(self.per_node_sent.items())},
            "per_node_delivered": {
                str(k): int(v) for k, v in sorted(self.per_node_delivered.items())
            },
        }
