"""Run-time metrics collected by the simulator.

The harness uses these counters to report the quantities the paper's
discussion section talks about (message complexity, round complexity) and
to compare the id-only algorithms against the known-(n, f) baselines in
experiment E9.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable

from .messages import NodeId

__all__ = ["RoundMetrics", "RunMetrics", "DecisionRecord"]


@dataclass
class RoundMetrics:
    """Counters for a single simulated round."""

    round_index: int
    messages_sent: int = 0
    broadcasts: int = 0
    unicasts: int = 0
    messages_delivered: int = 0
    active_nodes: int = 0
    byzantine_nodes: int = 0
    halted_nodes: int = 0
    #: Serialised payload bytes sent this round (all copies); stays 0 unless
    #: the network's payload accounting is enabled.
    payload_bytes: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "round": self.round_index,
            "messages_sent": self.messages_sent,
            "broadcasts": self.broadcasts,
            "unicasts": self.unicasts,
            "messages_delivered": self.messages_delivered,
            "active_nodes": self.active_nodes,
            "byzantine_nodes": self.byzantine_nodes,
            "halted_nodes": self.halted_nodes,
            "payload_bytes": self.payload_bytes,
        }


@dataclass(frozen=True)
class DecisionRecord:
    """When and what a node decided."""

    node_id: NodeId
    round_index: int
    value: Any


@dataclass
class RunMetrics:
    """Aggregated counters for a whole simulation run."""

    rounds: list[RoundMetrics] = field(default_factory=list)
    per_node_sent: Counter = field(default_factory=Counter)
    per_node_delivered: Counter = field(default_factory=Counter)
    decisions: list[DecisionRecord] = field(default_factory=list)
    #: Largest single payload seen (serialised bytes); 0 unless payload
    #: accounting is enabled on the network.
    peak_payload_bytes: int = 0

    # -- recording -----------------------------------------------------------

    def start_round(self, round_index: int) -> RoundMetrics:
        metrics = RoundMetrics(round_index=round_index)
        self.rounds.append(metrics)
        return metrics

    def record_send(self, node_id: NodeId, fanout: int, broadcast: bool) -> None:
        if not self.rounds:
            return
        current = self.rounds[-1]
        current.messages_sent += fanout
        if broadcast:
            current.broadcasts += 1
        else:
            current.unicasts += 1
        self.per_node_sent[node_id] += fanout

    def record_delivery(self, node_id: NodeId, count: int) -> None:
        if not self.rounds:
            return
        self.rounds[-1].messages_delivered += count
        self.per_node_delivered[node_id] += count

    def record_deliveries(self, counts: Iterable[tuple[NodeId, int]]) -> None:
        """Commit one round of delivery counters in bulk.

        Equivalent to calling :meth:`record_delivery` once per ``(node,
        count)`` pair, in order — including registering nodes whose count is
        zero — but with a single round-counter update.  The fast and queue
        engines use this once per round instead of once per process.
        """

        if not self.rounds:
            return
        per_node = self.per_node_delivered
        total = 0
        for node_id, count in counts:
            total += count
            per_node[node_id] += count
        self.rounds[-1].messages_delivered += total

    def record_payload(self, nbytes: int, copies: int) -> None:
        """Account one send action's payload: ``nbytes`` × ``copies`` wire bytes.

        Called by every engine kernel next to :meth:`record_send` when the
        network's payload accounting is enabled, so byte totals are
        engine-independent just like message counts.
        """

        if not self.rounds:
            return
        self.rounds[-1].payload_bytes += nbytes * copies
        if nbytes > self.peak_payload_bytes:
            self.peak_payload_bytes = nbytes

    def record_decision(self, node_id: NodeId, round_index: int, value: Any) -> None:
        self.decisions.append(DecisionRecord(node_id, round_index, value))

    # -- summaries -------------------------------------------------------------

    @property
    def total_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_messages(self) -> int:
        return sum(r.messages_sent for r in self.rounds)

    @property
    def total_broadcasts(self) -> int:
        return sum(r.broadcasts for r in self.rounds)

    @property
    def total_payload_bytes(self) -> int:
        return sum(r.payload_bytes for r in self.rounds)

    def messages_per_round(self) -> list[int]:
        return [r.messages_sent for r in self.rounds]

    def decision_round(self, node_id: NodeId) -> int | None:
        """The round in which ``node_id`` first decided, or ``None``."""

        for record in self.decisions:
            if record.node_id == node_id:
                return record.round_index
        return None

    def decision_rounds(self) -> dict[NodeId, int]:
        """First decision round per node."""

        result: dict[NodeId, int] = {}
        for record in self.decisions:
            result.setdefault(record.node_id, record.round_index)
        return result

    def latest_decision_round(self) -> int | None:
        rounds = self.decision_rounds()
        return max(rounds.values()) if rounds else None

    def summary(self) -> dict[str, Any]:
        return {
            "rounds": self.total_rounds,
            "messages": self.total_messages,
            "broadcasts": self.total_broadcasts,
            "payload_bytes": self.total_payload_bytes,
            "peak_payload_bytes": self.peak_payload_bytes,
            "decisions": len(self.decision_rounds()),
            "last_decision_round": self.latest_decision_round(),
        }

    def as_dict(self) -> dict[str, Any]:
        """A JSON-serialisable dump (summary plus per-round counters).

        Used by the machine-readable result paths of the harness so run
        metrics can be archived and diffed alongside aggregated rows.
        """

        return {
            "summary": self.summary(),
            "per_round": [r.as_dict() for r in self.rounds],
            "per_node_sent": {str(k): int(v) for k, v in sorted(self.per_node_sent.items())},
            "per_node_delivered": {
                str(k): int(v) for k, v in sorted(self.per_node_delivered.items())
            },
        }
