"""Churn schedules for dynamic-network experiments (Section XI).

A churn schedule describes when nodes join and leave a running system.  The
adversary of Section XI controls the join/leave pattern subject to the
single constraint that ``n > 3f`` holds at the start of every round; the
generator below enforces that constraint while producing randomised
schedules for experiments E8 and E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..sim.messages import NodeId
from ..sim.rng import make_rng

__all__ = ["ChurnEvent", "ChurnSchedule", "generate_churn_schedule"]


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change."""

    round_index: int
    node_id: NodeId
    kind: str  # "join" or "leave"

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave"):
            raise ValueError(f"unknown churn event kind: {self.kind!r}")


@dataclass
class ChurnSchedule:
    """A validated sequence of joins and leaves.

    ``initial_correct`` / ``initial_byzantine`` describe the genesis
    membership; ``events`` the subsequent changes.  :meth:`membership_at`
    replays the schedule, which the tests use to check the ``n > 3f``
    invariant round by round.
    """

    initial_correct: tuple[NodeId, ...]
    initial_byzantine: tuple[NodeId, ...]
    events: tuple[ChurnEvent, ...] = ()
    byzantine_joiners: frozenset[NodeId] = frozenset()

    def joins(self) -> dict[int, list[NodeId]]:
        grouped: dict[int, list[NodeId]] = {}
        for event in self.events:
            if event.kind == "join":
                grouped.setdefault(event.round_index, []).append(event.node_id)
        return grouped

    def leaves(self) -> dict[int, list[NodeId]]:
        grouped: dict[int, list[NodeId]] = {}
        for event in self.events:
            if event.kind == "leave":
                grouped.setdefault(event.round_index, []).append(event.node_id)
        return grouped

    def is_byzantine(self, node_id: NodeId) -> bool:
        return node_id in self.initial_byzantine or node_id in self.byzantine_joiners

    def membership_at(self, round_index: int) -> tuple[set[NodeId], set[NodeId]]:
        """``(correct, byzantine)`` active at the start of ``round_index``."""

        correct = set(self.initial_correct)
        byzantine = set(self.initial_byzantine)
        for event in self.events:
            if event.round_index > round_index:
                continue
            target = byzantine if self.is_byzantine(event.node_id) else correct
            if event.kind == "join":
                target.add(event.node_id)
            else:
                target.discard(event.node_id)
        return correct, byzantine

    def satisfies_resiliency(self, horizon: int) -> bool:
        """True when ``n > 3f`` holds at the start of every round ≤ horizon."""

        for round_index in range(1, horizon + 1):
            correct, byzantine = self.membership_at(round_index)
            n = len(correct) + len(byzantine)
            if n <= 3 * len(byzantine):
                return False
        return True

    def all_node_ids(self) -> set[NodeId]:
        ids = set(self.initial_correct) | set(self.initial_byzantine)
        ids.update(event.node_id for event in self.events)
        return ids


def generate_churn_schedule(
    *,
    initial_correct: int,
    initial_byzantine: int,
    rounds: int,
    join_rate: float = 0.1,
    leave_rate: float = 0.1,
    byzantine_join_fraction: float = 0.0,
    id_pool: Iterator[NodeId] | None = None,
    seed: int = 0,
    min_round: int = 3,
) -> ChurnSchedule:
    """Generate a random churn schedule that preserves ``n > 3f``.

    ``join_rate``/``leave_rate`` are per-round probabilities of one join /
    one leave.  Joins draw fresh identifiers; leaves pick a random *correct*
    current member that joined at genesis or earlier (leaving Byzantine
    nodes never helps the adversary, and removing them never threatens the
    resiliency constraint, so the generator keeps them in place for a
    worst-case schedule).  Any candidate event that would violate
    ``n > 3f`` is dropped.
    """

    rng = make_rng(seed)
    next_id = 20_000_000

    def fresh_id() -> NodeId:
        nonlocal next_id
        if id_pool is not None:
            return next(id_pool)
        next_id += int(rng.integers(1, 50))
        return next_id

    correct = {1_000_000 + i * 37 for i in range(initial_correct)}
    byzantine = {2_000_000 + i * 41 for i in range(initial_byzantine)}
    events: list[ChurnEvent] = []
    byz_joiners: set[NodeId] = set()

    live_correct = set(correct)
    live_byzantine = set(byzantine)
    for round_index in range(min_round, rounds + 1):
        if rng.random() < join_rate:
            node = fresh_id()
            is_byz = rng.random() < byzantine_join_fraction
            n_after = len(live_correct) + len(live_byzantine) + 1
            f_after = len(live_byzantine) + (1 if is_byz else 0)
            if n_after > 3 * f_after:
                events.append(ChurnEvent(round_index, node, "join"))
                if is_byz:
                    byz_joiners.add(node)
                    live_byzantine.add(node)
                else:
                    live_correct.add(node)
        if rng.random() < leave_rate and len(live_correct) > 1:
            candidates = sorted(live_correct)
            node = candidates[int(rng.integers(0, len(candidates)))]
            n_after = len(live_correct) - 1 + len(live_byzantine)
            if n_after > 3 * len(live_byzantine):
                events.append(ChurnEvent(round_index, node, "leave"))
                live_correct.discard(node)

    return ChurnSchedule(
        initial_correct=tuple(sorted(correct)),
        initial_byzantine=tuple(sorted(byzantine)),
        events=tuple(events),
        byzantine_joiners=frozenset(byz_joiners),
    )
