"""Churn schedules for dynamic-network experiments (Section XI).

A churn schedule describes when nodes join and leave a running system.  The
adversary of Section XI controls the join/leave pattern subject to the
single constraint that ``n > 3f`` holds at the start of every round; the
generator below enforces that constraint while producing randomised
schedules for experiments E8 and E10.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..sim.messages import NodeId
from ..sim.rng import make_rng

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "generate_churn_schedule",
    "generate_flash_crowd_schedule",
]

#: Genesis identifiers are minted on these arithmetic progressions; the
#: generators guard caller-supplied ``id_pool`` ids against colliding with
#: them (a collision would silently merge a joiner with a genesis node).
_GENESIS_CORRECT_BASE, _GENESIS_CORRECT_STEP = 1_000_000, 37
_GENESIS_BYZANTINE_BASE, _GENESIS_BYZANTINE_STEP = 2_000_000, 41


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change."""

    round_index: int
    node_id: NodeId
    kind: str  # "join" or "leave"

    def __post_init__(self) -> None:
        if self.kind not in ("join", "leave"):
            raise ValueError(f"unknown churn event kind: {self.kind!r}")


@dataclass
class ChurnSchedule:
    """A validated sequence of joins and leaves.

    ``initial_correct`` / ``initial_byzantine`` describe the genesis
    membership; ``events`` the subsequent changes.  :meth:`membership_at`
    replays the schedule, which the tests use to check the ``n > 3f``
    invariant round by round.
    """

    initial_correct: tuple[NodeId, ...]
    initial_byzantine: tuple[NodeId, ...]
    events: tuple[ChurnEvent, ...] = ()
    byzantine_joiners: frozenset[NodeId] = frozenset()

    def joins(self) -> dict[int, list[NodeId]]:
        grouped: dict[int, list[NodeId]] = {}
        for event in self.events:
            if event.kind == "join":
                grouped.setdefault(event.round_index, []).append(event.node_id)
        return grouped

    def leaves(self) -> dict[int, list[NodeId]]:
        grouped: dict[int, list[NodeId]] = {}
        for event in self.events:
            if event.kind == "leave":
                grouped.setdefault(event.round_index, []).append(event.node_id)
        return grouped

    def is_byzantine(self, node_id: NodeId) -> bool:
        return node_id in self.initial_byzantine or node_id in self.byzantine_joiners

    def membership_at(self, round_index: int) -> tuple[set[NodeId], set[NodeId]]:
        """``(correct, byzantine)`` active at the start of ``round_index``."""

        correct = set(self.initial_correct)
        byzantine = set(self.initial_byzantine)
        for event in self.events:
            if event.round_index > round_index:
                continue
            target = byzantine if self.is_byzantine(event.node_id) else correct
            if event.kind == "join":
                target.add(event.node_id)
            else:
                target.discard(event.node_id)
        return correct, byzantine

    def satisfies_resiliency(self, horizon: int) -> bool:
        """True when ``n > 3f`` holds at the start of every round ≤ horizon."""

        for round_index in range(1, horizon + 1):
            correct, byzantine = self.membership_at(round_index)
            n = len(correct) + len(byzantine)
            if n <= 3 * len(byzantine):
                return False
        return True

    def all_node_ids(self) -> set[NodeId]:
        ids = set(self.initial_correct) | set(self.initial_byzantine)
        ids.update(event.node_id for event in self.events)
        return ids


def _genesis_membership(
    initial_correct: int, initial_byzantine: int
) -> tuple[set[NodeId], set[NodeId]]:
    correct = {
        _GENESIS_CORRECT_BASE + i * _GENESIS_CORRECT_STEP
        for i in range(initial_correct)
    }
    byzantine = {
        _GENESIS_BYZANTINE_BASE + i * _GENESIS_BYZANTINE_STEP
        for i in range(initial_byzantine)
    }
    return correct, byzantine


def _make_id_minter(
    id_pool: Iterator[NodeId] | None,
    rng: np.random.Generator,
    used: set[NodeId],
):
    """Fresh-identifier source that rejects collisions with live/genesis ids.

    Generated ids start at 20M (above both genesis progressions); pool ids
    are caller-supplied, so a pool id that collides with a genesis id or a
    previously issued one would silently merge two logically distinct
    nodes — that is a configuration error, reported loudly.
    """

    next_id = 20_000_000

    def fresh_id() -> NodeId:
        nonlocal next_id
        if id_pool is not None:
            node = next(id_pool)
            if node in used:
                raise ValueError(
                    f"id_pool yielded {node}, which collides with a genesis "
                    "or previously issued node id"
                )
            used.add(node)
            return node
        next_id += int(rng.integers(1, 50))
        used.add(next_id)
        return next_id

    return fresh_id


def generate_churn_schedule(
    *,
    initial_correct: int,
    initial_byzantine: int,
    rounds: int,
    join_rate: float = 0.1,
    leave_rate: float = 0.1,
    byzantine_join_fraction: float = 0.0,
    id_pool: Iterator[NodeId] | None = None,
    seed: int = 0,
    min_round: int = 3,
    leave_candidates: str = "live",
) -> ChurnSchedule:
    """Generate a random churn schedule that preserves ``n > 3f``.

    ``join_rate``/``leave_rate`` are per-round probabilities of one join /
    one leave.  Joins draw fresh identifiers (``id_pool`` ids are rejected
    if they collide with a genesis or already-issued id).  Leaves pick a
    random correct *current* member — by default any live correct node,
    later joiners included (``leave_candidates="live"``); pass
    ``leave_candidates="genesis"`` to restrict departures to nodes that
    were present at genesis, which keeps every joiner alive for the whole
    run.  Byzantine nodes never leave: removing them neither helps the
    adversary nor threatens the resiliency constraint, so the generator
    keeps them in place for a worst-case schedule.  Any candidate event
    that would violate ``n > 3f`` is dropped.
    """

    if leave_candidates not in ("live", "genesis"):
        raise ValueError(
            f"unknown leave_candidates {leave_candidates!r}; "
            "choose 'live' or 'genesis'"
        )
    rng = make_rng(seed)
    correct, byzantine = _genesis_membership(initial_correct, initial_byzantine)
    fresh_id = _make_id_minter(id_pool, rng, set(correct) | set(byzantine))
    events: list[ChurnEvent] = []
    byz_joiners: set[NodeId] = set()

    live_correct = set(correct)
    live_byzantine = set(byzantine)
    for round_index in range(min_round, rounds + 1):
        if rng.random() < join_rate:
            node = fresh_id()
            is_byz = rng.random() < byzantine_join_fraction
            n_after = len(live_correct) + len(live_byzantine) + 1
            f_after = len(live_byzantine) + (1 if is_byz else 0)
            if n_after > 3 * f_after:
                events.append(ChurnEvent(round_index, node, "join"))
                if is_byz:
                    byz_joiners.add(node)
                    live_byzantine.add(node)
                else:
                    live_correct.add(node)
        if rng.random() < leave_rate and len(live_correct) > 1:
            pool = (
                live_correct
                if leave_candidates == "live"
                else live_correct & correct
            )
            candidates = sorted(pool)
            if candidates:
                node = candidates[int(rng.integers(0, len(candidates)))]
                n_after = len(live_correct) - 1 + len(live_byzantine)
                if n_after > 3 * len(live_byzantine):
                    events.append(ChurnEvent(round_index, node, "leave"))
                    live_correct.discard(node)

    return ChurnSchedule(
        initial_correct=tuple(sorted(correct)),
        initial_byzantine=tuple(sorted(byzantine)),
        events=tuple(events),
        byzantine_joiners=frozenset(byz_joiners),
    )


def generate_flash_crowd_schedule(
    *,
    initial_correct: int,
    initial_byzantine: int,
    rounds: int,
    burst_round: int = 5,
    burst_size: int = 5,
    burst_byzantine_fraction: float = 0.0,
    exodus_round: int | None = None,
    exodus_fraction: float = 0.5,
    id_pool: Iterator[NodeId] | None = None,
    seed: int = 0,
) -> ChurnSchedule:
    """A flash-crowd schedule: a join burst, then an optional mass exodus.

    ``burst_size`` fresh nodes all join at ``burst_round`` (each Byzantine
    with probability ``burst_byzantine_fraction``, subject to ``n > 3f``
    after every admission — joins that would violate it are dropped).  If
    ``exodus_round`` is given, a ``exodus_fraction`` share of the then-live
    correct nodes — burst joiners first, the most flash-crowd-like
    pattern — leave together at that round, again subject to ``n > 3f``.

    This is the stress pattern random per-round churn almost never
    produces: the membership estimate ``nv`` at every correct node jumps
    by ``burst_size`` within one round, and then (optionally) collapses,
    which is exactly where relative-threshold bookkeeping is most likely
    to crack.
    """

    if burst_size < 0:
        raise ValueError("burst_size must be non-negative")
    if not 0.0 <= exodus_fraction <= 1.0:
        raise ValueError("exodus_fraction must be within [0, 1]")
    if not 1 <= burst_round <= rounds:
        raise ValueError("burst_round must fall within the run's rounds")
    if exodus_round is not None and not burst_round < exodus_round <= rounds:
        raise ValueError("exodus_round must fall after burst_round, within rounds")
    rng = make_rng(seed)
    correct, byzantine = _genesis_membership(initial_correct, initial_byzantine)
    fresh_id = _make_id_minter(id_pool, rng, set(correct) | set(byzantine))
    events: list[ChurnEvent] = []
    byz_joiners: set[NodeId] = set()

    live_correct = set(correct)
    live_byzantine = set(byzantine)
    burst_joiners: list[NodeId] = []
    for _ in range(burst_size):
        node = fresh_id()
        is_byz = rng.random() < burst_byzantine_fraction
        n_after = len(live_correct) + len(live_byzantine) + 1
        f_after = len(live_byzantine) + (1 if is_byz else 0)
        if n_after <= 3 * f_after:
            continue  # admitting this Byzantine joiner would break n > 3f
        events.append(ChurnEvent(burst_round, node, "join"))
        if is_byz:
            byz_joiners.add(node)
            live_byzantine.add(node)
        else:
            live_correct.add(node)
            burst_joiners.append(node)

    if exodus_round is not None:
        leavers = int(round(exodus_fraction * len(live_correct)))
        # Burst joiners churn out first; genesis nodes only if the exodus
        # is larger than the crowd that arrived.
        ordered = sorted(burst_joiners) + sorted(live_correct - set(burst_joiners))
        for node in ordered[:leavers]:
            if len(live_correct) <= 1:
                break
            n_after = len(live_correct) - 1 + len(live_byzantine)
            if n_after <= 3 * len(live_byzantine):
                break
            events.append(ChurnEvent(exodus_round, node, "leave"))
            live_correct.discard(node)

    return ChurnSchedule(
        initial_correct=tuple(sorted(correct)),
        initial_byzantine=tuple(sorted(byzantine)),
        events=tuple(events),
        byzantine_joiners=frozenset(byz_joiners),
    )
