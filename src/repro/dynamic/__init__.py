"""Dynamic-network substrate: churn schedules and churning system assembly."""

from .churn import ChurnEvent, ChurnSchedule, generate_churn_schedule
from .membership import DynamicSystem, build_total_order_system, every_round_events

__all__ = [
    "ChurnEvent",
    "ChurnSchedule",
    "DynamicSystem",
    "build_total_order_system",
    "every_round_events",
    "generate_churn_schedule",
]
