"""Helpers for assembling dynamic (churning) total-ordering systems.

Ties together a :class:`~repro.dynamic.churn.ChurnSchedule`, the
:class:`~repro.core.total_order.TotalOrderProcess` protocol and the
simulator's join/leave hooks, so experiments E8/E10 and the examples can
build a churning system in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from ..adversary.base import AdversaryStrategy, ByzantineProcess
from ..adversary.registry import make_strategy
from ..core.total_order import TotalOrderProcess
from ..sim.messages import NodeId
from ..sim.network import SynchronousNetwork
from ..sim.rng import derive
from .churn import ChurnSchedule

__all__ = ["DynamicSystem", "build_total_order_system", "every_round_events"]


def every_round_events(node_id: NodeId, *, period: int = 1) -> Callable[[int], Hashable | None]:
    """Event source: node ``node_id`` witnesses one event every ``period`` rounds."""

    def source(round_index: int) -> Hashable | None:
        if round_index % period == 0:
            return f"event:{node_id}:{round_index}"
        return None

    return source


@dataclass
class DynamicSystem:
    """A churning total-ordering system ready to run."""

    network: SynchronousNetwork
    schedule: ChurnSchedule
    genesis_correct: list[NodeId]

    def chains(self) -> dict[NodeId, tuple]:
        """The chain output by every genesis-correct node."""

        return {i: self.network.process(i).chain for i in self.genesis_correct}


def build_total_order_system(
    schedule: ChurnSchedule,
    *,
    event_period: int = 1,
    strategy: str | AdversaryStrategy | None = "silent",
    seed: int = 0,
    trace: bool = False,
    membership_wire: str = "unicast",
) -> DynamicSystem:
    """Instantiate the total-ordering protocol over a churn schedule.

    Genesis nodes are configured with the genesis membership; joining nodes
    run the ``present``/``ack`` handshake.  Leaves are realised by giving
    the departing process its ``leave_round`` (the protocol announces
    ``absent`` itself) rather than by yanking it from the network, so the
    wind-down path of Algorithm 6 is exercised.  ``membership_wire``
    selects the ack wire format for every correct node (see
    :data:`repro.core.total_order.MEMBERSHIP_WIRES`); chains are
    identical either way, only the traffic differs.
    """

    genesis_correct = list(schedule.initial_correct)
    genesis_byzantine = list(schedule.initial_byzantine)
    genesis = set(genesis_correct) | set(genesis_byzantine)

    leave_rounds: dict[NodeId, int] = {}
    for event in schedule.events:
        if event.kind == "leave":
            leave_rounds.setdefault(event.node_id, event.round_index)

    def make_correct(node: NodeId, members: set[NodeId] | None) -> TotalOrderProcess:
        return TotalOrderProcess(
            node,
            initial_members=members,
            events=every_round_events(node, period=event_period),
            leave_round=leave_rounds.get(node),
            membership_wire=membership_wire,
        )

    def make_byzantine(node: NodeId) -> ByzantineProcess:
        strat = (
            make_strategy(strategy)
            if isinstance(strategy, str)
            else (strategy or make_strategy("silent"))
        )
        return ByzantineProcess(node, strat, seed=derive(seed, "byz", node))

    processes = [
        make_correct(node, genesis) for node in genesis_correct
    ] + [make_byzantine(node) for node in genesis_byzantine]

    joins: dict[int, list] = {}
    for event in schedule.events:
        if event.kind != "join":
            continue
        if schedule.is_byzantine(event.node_id):
            proc = make_byzantine(event.node_id)
        else:
            proc = make_correct(event.node_id, None)
        joins.setdefault(event.round_index, []).append(proc)

    network = SynchronousNetwork(
        processes, seed=derive(seed, "net"), trace=trace, joins=joins
    )
    return DynamicSystem(
        network=network, schedule=schedule, genesis_correct=genesis_correct
    )
